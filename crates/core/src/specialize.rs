//! Gate specialization for chunk-group buffers.
//!
//! When a stage executes, the engine assembles a buffer holding a *group*
//! of `2^|H|` chunks (`H` = the stage's high pairing qubits). A circuit
//! gate's qubits then fall into three classes:
//!
//! * **local** (`q < chunk_bits`) — same bit position inside the buffer;
//! * **in `H`** — mapped to buffer bit `chunk_bits + rank(q in H)`;
//! * **outside** — a high qubit not in `H`. Its value is *fixed* for the
//!   whole group (every chunk in the group shares those bits), so the gate
//!   specializes: controls drop away or kill the gate, diagonal action
//!   collapses to a smaller gate or a global scalar.
//!
//! The planner guarantees outside qubits are never *paired* by the gate, so
//! specialization is always possible; hitting the `unreachable!` arms means
//! the plan was built with the wrong config.

use mq_circuit::gate::Gate;
use mq_circuit::matrix::Mat2;
use mq_num::Complex64;

/// The result of specializing one circuit gate to one chunk group.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)] // transient value, applied immediately
pub enum Specialized {
    /// The gate does not touch this group at all.
    Skip,
    /// The gate multiplies the whole group buffer by a scalar.
    Scalar(Complex64),
    /// The gate acts inside the buffer with remapped qubit indices.
    Apply(Gate),
}

/// Context for specialization: the chunk geometry and the group identity.
#[derive(Debug, Clone)]
pub struct GroupContext<'a> {
    /// log2 amplitudes per chunk.
    pub chunk_bits: u32,
    /// The stage's high pairing qubits, sorted ascending.
    pub high: &'a [u32],
    /// Any chunk index belonging to the group (its non-`high` high bits
    /// identify the group; its `high` bits are ignored).
    pub base_chunk: usize,
}

impl<'a> GroupContext<'a> {
    /// Buffer width in qubits: chunk bits + one per high qubit.
    pub fn buffer_qubits(&self) -> u32 {
        self.chunk_bits + self.high.len() as u32
    }

    /// Classifies a global qubit: `Ok(local_index)` if representable in the
    /// buffer, `Err(bit_value)` if outside (with its fixed value).
    fn map(&self, q: u32) -> Result<u32, bool> {
        if q < self.chunk_bits {
            return Ok(q);
        }
        if let Some(rank) = self.high.iter().position(|&h| h == q) {
            return Ok(self.chunk_bits + rank as u32);
        }
        Err((self.base_chunk >> (q - self.chunk_bits)) & 1 == 1)
    }
}

/// Specializes `gate` to the chunk group described by `ctx`.
pub fn specialize(gate: &Gate, ctx: &GroupContext<'_>) -> Specialized {
    use Gate::*;
    match gate {
        // --- single-qubit gates -------------------------------------------
        H(q) | X(q) | Y(q) | Sx(q) | Sxdg(q) | Rx(q, _) | Ry(q, _) | U3(q, _, _, _) => {
            match ctx.map(*q) {
                Ok(l) => Specialized::Apply(remap_1q(gate, l)),
                Err(_) => unreachable!("pairing gate {gate} on outside qubit"),
            }
        }
        Z(q) | S(q) | Sdg(q) | T(q) | Tdg(q) | Rz(q, _) | P(q, _) => match ctx.map(*q) {
            Ok(l) => Specialized::Apply(remap_1q(gate, l)),
            Err(bit) => scalar_from_diag(diag_of_1q(gate), bit),
        },
        U1q(q, m) => match ctx.map(*q) {
            Ok(l) => Specialized::Apply(U1q(l, *m)),
            Err(bit) => {
                assert!(m.is_diagonal(0.0), "pairing U1q on outside qubit");
                scalar_from_diag((m.0[0], m.0[3]), bit)
            }
        },
        // --- controlled-pairing gates -------------------------------------
        Cx(c, t) | Cy(c, t) => {
            let target = match ctx.map(*t) {
                Ok(l) => l,
                Err(_) => unreachable!("pairing target of {gate} outside buffer"),
            };
            match ctx.map(*c) {
                Ok(lc) => Specialized::Apply(match gate {
                    Cx(..) => Cx(lc, target),
                    _ => Cy(lc, target),
                }),
                Err(false) => Specialized::Skip,
                Err(true) => Specialized::Apply(match gate {
                    Cx(..) => X(target),
                    _ => Y(target),
                }),
            }
        }
        // --- diagonal two-qubit gates --------------------------------------
        Cz(a, b) => specialize_diag2(ctx, *a, *b, |ba, bb| {
            if ba && bb {
                -Complex64::ONE
            } else {
                Complex64::ONE
            }
        }),
        Cp(a, b, l) => {
            let phase = Complex64::cis(*l);
            specialize_diag2(
                ctx,
                *a,
                *b,
                move |ba, bb| {
                    if ba && bb {
                        phase
                    } else {
                        Complex64::ONE
                    }
                },
            )
        }
        Rzz(a, b, t) => {
            let e_m = Complex64::cis(-t / 2.0);
            let e_p = Complex64::cis(t / 2.0);
            specialize_diag2(ctx, *a, *b, move |ba, bb| if ba == bb { e_m } else { e_p })
        }
        // --- two-qubit pairing gates ----------------------------------------
        Swap(a, b) => match (ctx.map(*a), ctx.map(*b)) {
            (Ok(la), Ok(lb)) => Specialized::Apply(Swap(la, lb)),
            _ => unreachable!("swap pairs both qubits; planner must cover them"),
        },
        U2q(a, b, m) => match (ctx.map(*a), ctx.map(*b)) {
            (Ok(la), Ok(lb)) => Specialized::Apply(U2q(la, lb, *m)),
            _ => unreachable!("u2q pairs both qubits; planner must cover them"),
        },
        // --- multi-controlled ----------------------------------------------
        Mcu {
            controls,
            target,
            u,
        } => {
            let mut kept: Vec<u32> = Vec::with_capacity(controls.len());
            for &c in controls {
                match ctx.map(c) {
                    Ok(l) => kept.push(l),
                    Err(false) => return Specialized::Skip,
                    Err(true) => {} // satisfied control drops away
                }
            }
            match ctx.map(*target) {
                Ok(lt) => {
                    kept.sort_unstable();
                    if kept.is_empty() {
                        Specialized::Apply(U1q(lt, *u))
                    } else {
                        Specialized::Apply(Mcu {
                            controls: kept,
                            target: lt,
                            u: *u,
                        })
                    }
                }
                Err(bit) => {
                    // Outside target: must be diagonal (planner guarantee).
                    assert!(u.is_diagonal(0.0), "pairing mcu target outside buffer");
                    let scalar = if bit { u.0[3] } else { u.0[0] };
                    controlled_scalar(&kept, scalar)
                }
            }
        }
    }
}

/// Remaps a plain single-qubit gate to a new qubit index.
fn remap_1q(gate: &Gate, l: u32) -> Gate {
    use Gate::*;
    match gate {
        H(_) => H(l),
        X(_) => X(l),
        Y(_) => Y(l),
        Z(_) => Z(l),
        S(_) => S(l),
        Sdg(_) => Sdg(l),
        T(_) => T(l),
        Tdg(_) => Tdg(l),
        Sx(_) => Sx(l),
        Sxdg(_) => Sxdg(l),
        Rx(_, t) => Rx(l, *t),
        Ry(_, t) => Ry(l, *t),
        Rz(_, t) => Rz(l, *t),
        P(_, p) => P(l, *p),
        U3(_, a, b, c) => U3(l, *a, *b, *c),
        U1q(_, m) => U1q(l, *m),
        _ => unreachable!("not a 1q gate"),
    }
}

/// Diagonal `(d0, d1)` of a diagonal single-qubit gate.
fn diag_of_1q(gate: &Gate) -> (Complex64, Complex64) {
    let m = gate.mat2().expect("diagonal 1q gate");
    (m.0[0], m.0[3])
}

fn scalar_from_diag(d: (Complex64, Complex64), bit: bool) -> Specialized {
    let s = if bit { d.1 } else { d.0 };
    if s == Complex64::ONE {
        Specialized::Skip
    } else {
        Specialized::Scalar(s)
    }
}

/// Specializes a diagonal 2q gate with diagonal factor `f(bit_a, bit_b)`.
fn specialize_diag2(
    ctx: &GroupContext<'_>,
    a: u32,
    b: u32,
    f: impl Fn(bool, bool) -> Complex64,
) -> Specialized {
    match (ctx.map(a), ctx.map(b)) {
        (Ok(la), Ok(lb)) => {
            // Representable: emit as U2q? Cheaper: keep as a diagonal gate.
            // Reconstruct the original gate shape via a diagonal U2q.
            let mut m = mq_circuit::matrix::Mat4::identity();
            m.0[0] = f(false, false);
            m.0[5] = f(true, false);
            m.0[10] = f(false, true);
            m.0[15] = f(true, true);
            Specialized::Apply(Gate::U2q(la, lb, m))
        }
        (Ok(la), Err(bb)) => diag1_apply(la, f(false, bb), f(true, bb)),
        (Err(ba), Ok(lb)) => diag1_apply(lb, f(ba, false), f(ba, true)),
        (Err(ba), Err(bb)) => {
            let s = f(ba, bb);
            if s == Complex64::ONE {
                Specialized::Skip
            } else {
                Specialized::Scalar(s)
            }
        }
    }
}

fn diag1_apply(l: u32, d0: Complex64, d1: Complex64) -> Specialized {
    if d0 == Complex64::ONE && d1 == Complex64::ONE {
        return Specialized::Skip;
    }
    Specialized::Apply(Gate::U1q(
        l,
        Mat2::new(d0, Complex64::ZERO, Complex64::ZERO, d1),
    ))
}

/// "Multiply amplitudes with all `controls` set by `scalar`" as a gate.
fn controlled_scalar(controls: &[u32], scalar: Complex64) -> Specialized {
    if scalar == Complex64::ONE {
        return Specialized::Skip;
    }
    let mut cs = controls.to_vec();
    cs.sort_unstable();
    match cs.split_last() {
        None => Specialized::Scalar(scalar),
        Some((&last, rest)) => {
            let u = Mat2::new(Complex64::ONE, Complex64::ZERO, Complex64::ZERO, scalar);
            if rest.is_empty() {
                Specialized::Apply(Gate::U1q(last, u))
            } else {
                Specialized::Apply(Gate::Mcu {
                    controls: rest.to_vec(),
                    target: last,
                    u,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_num::complex::c64;

    fn ctx<'a>(chunk_bits: u32, high: &'a [u32], base_chunk: usize) -> GroupContext<'a> {
        GroupContext {
            chunk_bits,
            high,
            base_chunk,
        }
    }

    #[test]
    fn local_gates_pass_through_unchanged() {
        let c = ctx(4, &[], 0);
        assert_eq!(specialize(&Gate::H(2), &c), Specialized::Apply(Gate::H(2)));
        assert_eq!(
            specialize(&Gate::Cx(1, 3), &c),
            Specialized::Apply(Gate::Cx(1, 3))
        );
    }

    #[test]
    fn high_qubits_remap_to_buffer_top() {
        // chunk_bits=4, H = [6, 9]: qubit 6 -> 4, qubit 9 -> 5.
        let c = ctx(4, &[6, 9], 0);
        assert_eq!(specialize(&Gate::H(6), &c), Specialized::Apply(Gate::H(4)));
        assert_eq!(
            specialize(&Gate::Cx(9, 2), &c),
            Specialized::Apply(Gate::Cx(5, 2))
        );
        assert_eq!(
            specialize(&Gate::Swap(6, 9), &c),
            Specialized::Apply(Gate::Swap(4, 5))
        );
    }

    #[test]
    fn outside_control_skips_or_drops() {
        // qubit 7 outside; base_chunk bit (7-4)=3 decides.
        let c0 = ctx(4, &[], 0b0000);
        assert_eq!(specialize(&Gate::Cx(7, 1), &c0), Specialized::Skip);
        let c1 = ctx(4, &[], 0b1000);
        assert_eq!(
            specialize(&Gate::Cx(7, 1), &c1),
            Specialized::Apply(Gate::X(1))
        );
    }

    #[test]
    fn outside_diagonal_1q_becomes_scalar() {
        let c1 = ctx(4, &[], 0b0010); // qubit 5 bit = 1
        match specialize(&Gate::Z(5), &c1) {
            Specialized::Scalar(s) => assert!(s.approx_eq(c64(-1.0, 0.0), 1e-15)),
            other => panic!("unexpected {other:?}"),
        }
        let c0 = ctx(4, &[], 0b0000);
        assert_eq!(specialize(&Gate::Z(5), &c0), Specialized::Skip);
        // Rz has a phase on both bit values.
        match specialize(&Gate::Rz(5, 1.0), &c0) {
            Specialized::Scalar(s) => assert!(s.approx_eq(Complex64::cis(-0.5), 1e-15)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cz_with_one_outside_qubit() {
        // Cz(local 2, outside 6): bit=1 -> Z(2) as diagonal U1q.
        let c1 = ctx(4, &[], 0b0100);
        match specialize(&Gate::Cz(2, 6), &c1) {
            Specialized::Apply(Gate::U1q(2, m)) => {
                assert!(m.0[0].approx_eq(Complex64::ONE, 1e-15));
                assert!(m.0[3].approx_eq(c64(-1.0, 0.0), 1e-15));
            }
            other => panic!("unexpected {other:?}"),
        }
        let c0 = ctx(4, &[], 0);
        assert_eq!(specialize(&Gate::Cz(2, 6), &c0), Specialized::Skip);
    }

    #[test]
    fn cz_with_both_outside_qubits() {
        let c11 = ctx(2, &[], 0b11); // qubits 2 and 3 both 1
        match specialize(&Gate::Cz(2, 3), &c11) {
            Specialized::Scalar(s) => assert!(s.approx_eq(c64(-1.0, 0.0), 1e-15)),
            other => panic!("unexpected {other:?}"),
        }
        let c01 = ctx(2, &[], 0b01);
        assert_eq!(specialize(&Gate::Cz(2, 3), &c01), Specialized::Skip);
    }

    #[test]
    fn rzz_specializations() {
        let t = 0.8;
        // One outside (bit 0): Rz-like diagonal on the local qubit.
        let c = ctx(4, &[], 0);
        match specialize(&Gate::Rzz(1, 6, t), &c) {
            Specialized::Apply(Gate::U1q(1, m)) => {
                assert!(m.0[0].approx_eq(Complex64::cis(-t / 2.0), 1e-15));
                assert!(m.0[3].approx_eq(Complex64::cis(t / 2.0), 1e-15));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Both outside, equal bits: scalar e^{-it/2}.
        let c11 = ctx(2, &[], 0b11);
        match specialize(&Gate::Rzz(2, 3, t), &c11) {
            Specialized::Scalar(s) => assert!(s.approx_eq(Complex64::cis(-t / 2.0), 1e-15)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mcu_with_outside_controls() {
        // mcx(controls=[5,6], target=1), chunk_bits=4.
        let g = Gate::mcx(&[5, 6], 1);
        // Both outside controls satisfied: bare X (as a fused U1q).
        let c = ctx(4, &[], 0b0110);
        assert_eq!(
            specialize(&g, &c),
            Specialized::Apply(Gate::U1q(1, mq_circuit::gate::mat2_x()))
        );
        // One unsatisfied: skip.
        let c = ctx(4, &[], 0b0100);
        assert_eq!(specialize(&g, &c), Specialized::Skip);
        // Mixed: control 2 local, control 6 outside satisfied.
        let g2 = Gate::mcx(&[2, 6], 1);
        let c = ctx(4, &[], 0b0100);
        assert_eq!(
            specialize(&g2, &c),
            Specialized::Apply(Gate::Mcu {
                controls: vec![2],
                target: 1,
                u: mq_circuit::gate::mat2_x()
            })
        );
    }

    #[test]
    fn diagonal_mcu_with_outside_target() {
        // mcz(controls=[1], target=7): outside target bit=1 -> controlled
        // scalar -1 on qubit 1 = U1q diag(1, -1) = Z.
        let g = Gate::mcz(&[1], 7);
        let c = ctx(4, &[], 0b1000);
        match specialize(&g, &c) {
            Specialized::Apply(Gate::U1q(1, m)) => {
                assert!(m.0[3].approx_eq(c64(-1.0, 0.0), 1e-15));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Target bit = 0: diag entry is 1 -> skip.
        let c = ctx(4, &[], 0);
        assert_eq!(specialize(&g, &c), Specialized::Skip);
    }

    #[test]
    fn mcu_all_outside_becomes_scalar() {
        // mcp(controls=[5], target=6, pi): both outside, both bits 1.
        let g = Gate::mcp(&[5], 6, std::f64::consts::PI);
        let c = ctx(4, &[], 0b0110);
        match specialize(&g, &c) {
            Specialized::Scalar(s) => assert!(s.approx_eq(c64(-1.0, 0.0), 1e-12)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn high_qubit_diag2_stays_in_buffer() {
        // Cp between a local and an H qubit: full U2q inside the buffer.
        let high = [6u32];
        let c = ctx(4, &high, 0);
        match specialize(&Gate::Cp(2, 6, 0.3), &c) {
            Specialized::Apply(Gate::U2q(2, 4, m)) => {
                assert!(m.0[15].approx_eq(Complex64::cis(0.3), 1e-15));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn buffer_qubits_counts_high() {
        assert_eq!(ctx(4, &[], 0).buffer_qubits(), 4);
        assert_eq!(ctx(4, &[6, 9], 0).buffer_qubits(), 6);
    }
}
