//! The disk-spill base tier: compressed chunks under a resident-byte
//! budget, overflow spilled to temp files.

use super::{expect_chunk_len, fnv1a, ChunkStore, StoreCounters};
use mq_compress::{compress_complex, decompress_complex, Codec, CodecError, CompressionStats};
use mq_num::{bits, Complex64};
use parking_lot::Mutex;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Process-wide sequence so concurrent stores in one process get distinct
/// spill directories.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Where one chunk's compressed bytes currently live.
enum SpillSlot {
    InMemory { bytes: Vec<u8>, checksum: u64 },
    OnDisk { len: usize, checksum: u64 },
}

struct SpillState {
    slots: Vec<Option<SpillSlot>>,
    /// Sum of in-memory compressed slot bytes — never exceeds the budget.
    resident: usize,
}

/// Compressed chunks bounded by a configurable resident-byte budget;
/// overflow spills to per-chunk temp files — the paper's beyond-RAM
/// "+5 qubits" direction, in miniature.
///
/// Stores compress first, then make room *before* admitting the new chunk:
/// earlier-indexed resident chunks are written to disk until the newcomer
/// fits, so the in-memory total never exceeds the budget, even
/// transiently (a chunk larger than the whole budget goes straight to
/// disk). Loads of spilled chunks read the file back but do **not**
/// promote — residency changes only on stores, which keeps the budget
/// invariant trivial under concurrent sweeps. Both tiers carry the FNV-1a
/// integrity checksum, so bit rot in memory *or* on disk surfaces as a
/// typed [`CodecError::Corrupt`].
///
/// The spill directory is unique per store
/// (`$TMPDIR/mq-spill-<pid>-<seq>`) and removed on drop.
pub struct SpillStore {
    n_qubits: u32,
    chunk_bits: u32,
    codec: Arc<dyn Codec>,
    budget: usize,
    dir: PathBuf,
    state: Mutex<SpillState>,
    stats: Mutex<CompressionStats>,
    peak_resident: AtomicUsize,
    visits: AtomicU64,
    bytes_decompressed: AtomicU64,
    bytes_compressed: AtomicU64,
    spill_written: AtomicU64,
    spill_read: AtomicU64,
}

impl SpillStore {
    fn new_empty(
        n_qubits: u32,
        chunk_bits: u32,
        codec: Arc<dyn Codec>,
        budget: usize,
    ) -> Result<Self, CodecError> {
        let chunk_count = 1usize << (n_qubits - chunk_bits);
        let dir = std::env::temp_dir().join(format!(
            "mq-spill-{}-{}",
            std::process::id(),
            SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir)
            .map_err(|e| CodecError::Io(format!("creating spill dir {}: {e}", dir.display())))?;
        Ok(SpillStore {
            n_qubits,
            chunk_bits,
            codec,
            budget,
            dir,
            state: Mutex::new(SpillState {
                slots: (0..chunk_count).map(|_| None).collect(),
                resident: 0,
            }),
            stats: Mutex::new(CompressionStats::default()),
            peak_resident: AtomicUsize::new(0),
            visits: AtomicU64::new(0),
            bytes_decompressed: AtomicU64::new(0),
            bytes_compressed: AtomicU64::new(0),
            spill_written: AtomicU64::new(0),
            spill_read: AtomicU64::new(0),
        })
    }

    /// Builds the `|0...0>` state under `resident_budget` in-memory bytes.
    pub fn zero_state(
        n_qubits: u32,
        chunk_bits: u32,
        codec: Arc<dyn Codec>,
        resident_budget: usize,
    ) -> Result<Self, CodecError> {
        let chunk_bits = chunk_bits.min(n_qubits);
        let chunk_amps = 1usize << chunk_bits;
        let chunk_count = 1usize << (n_qubits - chunk_bits);
        let store = SpillStore::new_empty(n_qubits, chunk_bits, codec, resident_budget)?;
        let mut buf = vec![Complex64::ZERO; chunk_amps];
        buf[0] = Complex64::ONE;
        store.store_chunk(0, &buf)?;
        buf[0] = Complex64::ZERO;
        for i in 1..chunk_count {
            store.store_chunk(i, &buf)?;
        }
        Ok(store)
    }

    /// Compresses an existing dense state under the budget.
    ///
    /// # Panics
    /// Panics if `amps.len()` is not a power of two.
    pub fn from_amplitudes(
        amps: &[Complex64],
        chunk_bits: u32,
        codec: Arc<dyn Codec>,
        resident_budget: usize,
    ) -> Result<Self, CodecError> {
        assert!(bits::is_pow2(amps.len()), "length must be a power of two");
        let n_qubits = bits::floor_log2(amps.len());
        let chunk_bits = chunk_bits.min(n_qubits);
        let chunk_amps = 1usize << chunk_bits;
        let store = SpillStore::new_empty(n_qubits, chunk_bits, codec, resident_budget)?;
        for (i, piece) in amps.chunks_exact(chunk_amps).enumerate() {
            store.store_chunk(i, piece)?;
        }
        Ok(store)
    }

    /// The configured resident-byte budget.
    pub fn resident_budget(&self) -> usize {
        self.budget
    }

    /// Number of chunks currently spilled to disk (snapshot).
    pub fn spilled_chunks(&self) -> usize {
        self.state
            .lock()
            .slots
            .iter()
            .filter(|s| matches!(s, Some(SpillSlot::OnDisk { .. })))
            .count()
    }

    fn chunk_path(&self, i: usize) -> PathBuf {
        self.dir.join(format!("chunk-{i}.bin"))
    }

    fn write_file(&self, i: usize, bytes: &[u8]) -> Result<(), CodecError> {
        std::fs::write(self.chunk_path(i), bytes)
            .map_err(|e| CodecError::Io(format!("writing spill file for chunk {i}: {e}")))?;
        self.spill_written
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn read_file(&self, i: usize, len: usize) -> Result<Vec<u8>, CodecError> {
        let bytes = std::fs::read(self.chunk_path(i))
            .map_err(|e| CodecError::Io(format!("reading spill file for chunk {i}: {e}")))?;
        if bytes.len() != len {
            return Err(CodecError::Corrupt(format!(
                "spill file for chunk {i} has {} bytes, expected {len}",
                bytes.len()
            )));
        }
        self.spill_read.fetch_add(len as u64, Ordering::Relaxed);
        Ok(bytes)
    }

    /// Spills earliest-indexed resident chunks (≠ `keep`) until `need`
    /// more bytes fit in the budget. Called under the state lock.
    fn make_room(
        &self,
        state: &mut SpillState,
        keep: usize,
        need: usize,
    ) -> Result<(), CodecError> {
        if need > self.budget {
            return Ok(()); // caller sends the newcomer straight to disk
        }
        let mut i = 0;
        while state.resident + need > self.budget && i < state.slots.len() {
            if i != keep && matches!(state.slots[i], Some(SpillSlot::InMemory { .. })) {
                if let Some(SpillSlot::InMemory { bytes, checksum }) = state.slots[i].take() {
                    self.write_file(i, &bytes)?;
                    state.resident -= bytes.len();
                    state.slots[i] = Some(SpillSlot::OnDisk {
                        len: bytes.len(),
                        checksum,
                    });
                }
            }
            i += 1;
        }
        Ok(())
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

impl ChunkStore for SpillStore {
    fn kind(&self) -> &'static str {
        "spill"
    }

    fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    fn chunk_bits(&self) -> u32 {
        self.chunk_bits
    }

    fn load_chunk(&self, i: usize, out: &mut [Complex64]) -> Result<(), CodecError> {
        expect_chunk_len(self.chunk_amps(), out.len())?;
        let state = self.state.lock();
        let (bytes, checksum) = match &state.slots[i] {
            Some(SpillSlot::InMemory { bytes, checksum }) => (bytes.clone(), *checksum),
            Some(SpillSlot::OnDisk { len, checksum }) => (self.read_file(i, *len)?, *checksum),
            None => return Err(CodecError::Corrupt(format!("chunk {i} was never stored"))),
        };
        if fnv1a(&bytes) != checksum {
            return Err(CodecError::Corrupt(format!(
                "chunk {i} failed its integrity checksum"
            )));
        }
        self.visits.fetch_add(1, Ordering::Relaxed);
        self.bytes_decompressed
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        decompress_complex(self.codec.as_ref(), &bytes, out)
    }

    fn store_chunk(&self, i: usize, amps: &[Complex64]) -> Result<(), CodecError> {
        expect_chunk_len(self.chunk_amps(), amps.len())?;
        let bytes = compress_complex(self.codec.as_ref(), amps);
        let new_len = bytes.len();
        let checksum = fnv1a(&bytes);
        let mut state = self.state.lock();
        // Retire the old slot's accounting first.
        let old_len = match &state.slots[i] {
            Some(SpillSlot::InMemory { bytes: old, .. }) => old.len(),
            _ => 0,
        };
        state.resident -= old_len;
        state.slots[i] = None;
        if new_len > self.budget {
            // Never fits: straight to disk, resident bytes untouched.
            self.write_file(i, &bytes)?;
            state.slots[i] = Some(SpillSlot::OnDisk {
                len: new_len,
                checksum,
            });
        } else {
            // Make room *before* admitting, so the in-memory total never
            // exceeds the budget even transiently.
            self.make_room(&mut state, i, new_len)?;
            state.resident += new_len;
            state.slots[i] = Some(SpillSlot::InMemory { bytes, checksum });
            self.peak_resident
                .fetch_max(state.resident, Ordering::Relaxed);
        }
        drop(state);
        self.stats.lock().record(amps.len() * 16, new_len);
        self.bytes_compressed
            .fetch_add(new_len as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Swaps the two slots wholesale under the state lock. In-memory bytes
    /// move by pointer; on-disk chunks swap by *renaming* their spill files
    /// (no contents pass through memory), so resident bytes, the budget
    /// invariant, and every counter are untouched.
    fn swap_chunks(&self, i: usize, j: usize) -> Result<bool, CodecError> {
        if i == j {
            return Ok(true);
        }
        let mut state = self.state.lock();
        let ren = |from: &PathBuf, to: &PathBuf| {
            std::fs::rename(from, to).map_err(|e| {
                CodecError::Io(format!(
                    "renaming spill file {} -> {}: {e}",
                    from.display(),
                    to.display()
                ))
            })
        };
        let i_disk = matches!(state.slots[i], Some(SpillSlot::OnDisk { .. }));
        let j_disk = matches!(state.slots[j], Some(SpillSlot::OnDisk { .. }));
        let (pi, pj) = (self.chunk_path(i), self.chunk_path(j));
        if i_disk && j_disk {
            let tmp = self.dir.join(format!("chunk-{i}.swap"));
            ren(&pi, &tmp)?;
            ren(&pj, &pi)?;
            ren(&tmp, &pj)?;
        } else if i_disk {
            ren(&pi, &pj)?;
        } else if j_disk {
            ren(&pj, &pi)?;
        }
        state.slots.swap(i, j);
        Ok(true)
    }

    fn flush(&self) -> Result<(), CodecError> {
        Ok(())
    }

    /// In-memory compressed bytes only — the spilled remainder lives on
    /// disk and does not count against the memory budget.
    fn state_bytes(&self) -> usize {
        self.state.lock().resident
    }

    fn peak_state_bytes(&self) -> usize {
        self.peak_resident.load(Ordering::Relaxed)
    }

    fn peak_resident_bytes(&self) -> usize {
        self.peak_resident.load(Ordering::Relaxed)
    }

    fn counters(&self) -> StoreCounters {
        StoreCounters {
            chunk_visits: self.visits.load(Ordering::Relaxed),
            bytes_decompressed: self.bytes_decompressed.load(Ordering::Relaxed),
            bytes_compressed: self.bytes_compressed.load(Ordering::Relaxed),
            spill_bytes_written: self.spill_written.load(Ordering::Relaxed),
            spill_bytes_read: self.spill_read.load(Ordering::Relaxed),
            ..StoreCounters::default()
        }
    }

    fn cumulative_stats(&self) -> CompressionStats {
        *self.stats.lock()
    }

    fn set_error_allowance(&self, eb: Option<f64>) {
        self.codec.set_dynamic_bound(eb);
    }

    fn debug_corrupt_chunk(&self, i: usize) {
        let mut state = self.state.lock();
        match &mut state.slots[i] {
            Some(SpillSlot::InMemory { bytes, .. }) => {
                if let Some(b) = bytes.first_mut() {
                    *b ^= 0xFF;
                }
            }
            Some(SpillSlot::OnDisk { .. }) => {
                if let Ok(mut bytes) = std::fs::read(self.chunk_path(i)) {
                    if let Some(b) = bytes.first_mut() {
                        *b ^= 0xFF;
                    }
                    let _ = std::fs::write(self.chunk_path(i), &bytes);
                }
            }
            None => {}
        }
    }
}

impl std::fmt::Debug for SpillStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpillStore")
            .field("n_qubits", &self.n_qubits)
            .field("chunk_bits", &self.chunk_bits)
            .field("codec", &self.codec.name())
            .field("budget", &self.budget)
            .field("resident_bytes", &self.state_bytes())
            .field("spilled_chunks", &self.spilled_chunks())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_compress::{FpcCodec, SzCodec};
    use mq_num::complex::c64;

    fn noisy_chunk(seed: usize, amps: usize) -> Vec<Complex64> {
        (0..amps)
            .map(|k| {
                let x = (((seed * amps + k) * 2654435761) % 100_000) as f64 / 100_000.0;
                c64(x, 1.0 - x)
            })
            .collect()
    }

    #[test]
    fn zero_state_round_trips() {
        let store = SpillStore::zero_state(8, 4, Arc::new(SzCodec::new(1e-12)), 1 << 16).unwrap();
        let dense = store.to_dense().unwrap();
        assert!((dense[0].re - 1.0).abs() <= 1e-12);
        assert!(dense[1..].iter().all(|z| z.norm() <= 2e-12));
    }

    #[test]
    fn overflow_spills_to_disk_and_stays_under_budget() {
        // Incompressible chunks, a budget that holds roughly two of them.
        let budget = 16 * 16 * 2 + 64;
        let store = SpillStore::zero_state(8, 4, Arc::new(FpcCodec), budget).unwrap();
        for i in 0..store.chunk_count() {
            store.store_chunk(i, &noisy_chunk(i, 16)).unwrap();
            assert!(store.state_bytes() <= budget, "over budget at chunk {i}");
        }
        assert!(store.peak_resident_bytes() <= budget);
        assert!(store.spilled_chunks() > 0, "nothing spilled");
        assert!(store.counters().spill_bytes_written > 0);
        // Every chunk — resident or spilled — reads back exactly (FPC is
        // lossless).
        let mut buf = vec![Complex64::ZERO; 16];
        for i in 0..store.chunk_count() {
            store.load_chunk(i, &mut buf).unwrap();
            assert_eq!(buf, noisy_chunk(i, 16), "chunk {i}");
        }
        assert!(store.counters().spill_bytes_read > 0);
    }

    #[test]
    fn zero_budget_keeps_everything_on_disk() {
        let store = SpillStore::zero_state(6, 3, Arc::new(FpcCodec), 0).unwrap();
        assert_eq!(store.state_bytes(), 0);
        assert_eq!(store.spilled_chunks(), store.chunk_count());
        assert_eq!(store.peak_resident_bytes(), 0);
        let dense = store.to_dense().unwrap();
        assert_eq!(dense[0], Complex64::ONE);
    }

    #[test]
    fn corruption_is_detected_on_both_tiers() {
        let store = SpillStore::zero_state(6, 3, Arc::new(FpcCodec), 0).unwrap();
        store.debug_corrupt_chunk(2); // on disk
        let mut buf = vec![Complex64::ZERO; 8];
        assert!(matches!(
            store.load_chunk(2, &mut buf),
            Err(CodecError::Corrupt(_))
        ));
        let roomy = SpillStore::zero_state(6, 3, Arc::new(FpcCodec), 1 << 20).unwrap();
        roomy.debug_corrupt_chunk(1); // in memory
        assert!(matches!(
            roomy.load_chunk(1, &mut buf),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn swap_chunks_crosses_tiers_without_codec_or_spill_traffic() {
        // Budget holds ~2 chunks, so later stores spill earlier ones.
        let budget = 16 * 16 * 2 + 64;
        let store = SpillStore::zero_state(8, 4, Arc::new(FpcCodec), budget).unwrap();
        for i in 0..store.chunk_count() {
            store.store_chunk(i, &noisy_chunk(i, 16)).unwrap();
        }
        let resident = store.state_bytes();
        let before = store.counters();
        // Pick one spilled and one resident chunk.
        let (mem_idx, disk_idx) = {
            let state = store.state.lock();
            let mem = state
                .slots
                .iter()
                .position(|s| matches!(s, Some(SpillSlot::InMemory { .. })))
                .unwrap();
            let disk = state
                .slots
                .iter()
                .position(|s| matches!(s, Some(SpillSlot::OnDisk { .. })))
                .unwrap();
            (mem, disk)
        };
        assert!(store.swap_chunks(mem_idx, disk_idx).unwrap());
        // Disk-disk swap too (pure renames).
        let disks: Vec<usize> = {
            let state = store.state.lock();
            state
                .slots
                .iter()
                .enumerate()
                .filter(|(k, s)| *k != mem_idx && matches!(s, Some(SpillSlot::OnDisk { .. })))
                .map(|(k, _)| k)
                .take(2)
                .collect()
        };
        assert!(store.swap_chunks(disks[0], disks[1]).unwrap());
        // No codec traffic, no spill I/O counted, budget accounting intact.
        assert_eq!(store.counters(), before);
        assert_eq!(store.state_bytes(), resident);
        // Contents followed the swap exactly.
        let mut buf = vec![Complex64::ZERO; 16];
        store.load_chunk(mem_idx, &mut buf).unwrap();
        assert_eq!(buf, noisy_chunk(disk_idx, 16));
        store.load_chunk(disks[0], &mut buf).unwrap();
        assert_eq!(buf, noisy_chunk(disks[1], 16));
    }

    #[test]
    fn spill_directory_is_removed_on_drop() {
        let store = SpillStore::zero_state(6, 3, Arc::new(FpcCodec), 0).unwrap();
        let dir = store.dir.clone();
        assert!(dir.exists());
        drop(store);
        assert!(!dir.exists());
    }
}
