//! The chunked state-vector storage stack — MEMQSIM's resident
//! representation, decomposed into layers behind the [`ChunkStore`] trait.
//!
//! The `2^n`-amplitude state lives as `2^(n-c)` independently stored chunks
//! of `2^c` amplitudes (paper Fig. 2, "offline stage"). *How* a chunk is
//! held is a pluggable tier:
//!
//! * [`CompressedTier`] — codec-compressed chunks with integrity checksums,
//!   the paper's headline representation (and the default).
//! * [`DenseStore`] — uncompressed chunks; the no-codec baseline for widths
//!   where codec overhead dominates.
//! * [`SpillStore`] — compressed chunks bounded by a resident-byte budget;
//!   overflow spills to temp files on disk, the paper's beyond-RAM
//!   "+5 qubits" direction.
//!
//! Two middleware tiers wrap any inner store:
//!
//! * [`ResidencyCache`] — the write-back hot-chunk cache (recency tracking,
//!   content-fingerprint recompress skip, scan-resistant eviction), lifted
//!   out of the old monolithic store so it composes with every base tier.
//! * [`TelemetryTier`] — owns counter emission: it diffs the inner stack's
//!   plain atomic totals into an attached [`Telemetry`] handle after every
//!   operation, so inner tiers never name a telemetry type.
//!
//! [`build_store`] assembles the stack from a [`MemQSimConfig`]:
//! `TelemetryTier( ResidencyCache?( base tier ) )`.
//!
//! [`Telemetry`]: mq_telemetry::Telemetry

pub mod cache;
pub mod compressed;
pub mod dense;
pub mod spill;
pub mod telemetry_tier;

pub use cache::{CachePolicy, ResidencyCache};
pub use compressed::CompressedTier;
pub use dense::DenseStore;
pub use spill::SpillStore;
pub use telemetry_tier::TelemetryTier;

use crate::config::{MemQSimConfig, StoreKind};
use mq_compress::{CodecError, CompressionStats};
use mq_num::{bits, Complex64};
use mq_telemetry::Telemetry;
use std::sync::Arc;

/// FNV-1a 64-bit hash — the chunk integrity checksum.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// FNV-1a over the raw amplitude bits — the cache's content fingerprint.
pub(crate) fn fingerprint_amps(amps: &[Complex64]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for z in amps {
        for b in z.re.to_le_bytes().into_iter().chain(z.im.to_le_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Typed precondition: a chunk buffer must match the store's chunk size.
pub(crate) fn expect_chunk_len(expected: usize, got: usize) -> Result<(), CodecError> {
    if expected == got {
        Ok(())
    } else {
        Err(CodecError::BufferMismatch { expected, got })
    }
}

/// Monotonic operation totals a store tier accumulates over its lifetime.
///
/// Inner tiers keep these as plain atomics; the [`TelemetryTier`] diffs them
/// into a run's [`Telemetry`] record. Middleware
/// composes them: [`ResidencyCache`] replaces `chunk_visits` with its own
/// total (the inner store only sees misses) and adds the cache fields.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StoreCounters {
    /// Chunk load/store round trips observed at this tier.
    pub chunk_visits: u64,
    /// Compressed payload bytes expanded by codec decompression.
    pub bytes_decompressed: u64,
    /// Compressed payload bytes produced by codec compression.
    pub bytes_compressed: u64,
    /// Loads served from a residency cache (no checksum, no decode).
    pub cache_hits: u64,
    /// Loads that fell through a residency cache to the inner store.
    pub cache_misses: u64,
    /// Stores whose content fingerprint matched the resident copy.
    pub recompress_skipped: u64,
    /// Cache entries evicted.
    pub evictions: u64,
    /// Compressed chunk bytes spilled to disk.
    pub spill_bytes_written: u64,
    /// Compressed chunk bytes read back from disk.
    pub spill_bytes_read: u64,
    /// Chunk encodes where the adaptive codec picked zero-RLE.
    pub codec_picks_zero_rle: u64,
    /// Chunk encodes where the adaptive codec picked FPC.
    pub codec_picks_fpc: u64,
    /// Chunk encodes where the adaptive codec picked shuffle+LZSS.
    pub codec_picks_shuffle_lzss: u64,
    /// Chunk encodes where the adaptive codec picked SZ.
    pub codec_picks_sz: u64,
    /// Chunk encodes stored as packed f32 pairs (mixed precision).
    pub mixed_precision_chunks: u64,
    /// Chunk encodes that went through a lossy path (SZ pick or f32
    /// demotion) — the signal the engine diffs per stage to attribute
    /// error-budget spend.
    pub lossy_encodes: u64,
}

/// A chunked state-vector storage tier.
///
/// Object-safe so engines, backends and benches hold `Arc<dyn ChunkStore>`
/// and never name a concrete representation. Implementations are
/// `Send + Sync`: pipeline threads and "idle core" workers stream different
/// chunks concurrently.
pub trait ChunkStore: Send + Sync {
    /// Short display name of this tier stack (`"compressed"`, `"dense"`,
    /// `"spill"`; middleware reports the inner store's kind).
    fn kind(&self) -> &'static str;

    /// Register width.
    fn n_qubits(&self) -> u32;

    /// Chunk size exponent (`2^chunk_bits` amplitudes per chunk).
    fn chunk_bits(&self) -> u32;

    /// Reads chunk `i` into `out` (`out.len()` must equal
    /// [`chunk_amps`](ChunkStore::chunk_amps), checked as a typed
    /// [`CodecError::BufferMismatch`]).
    fn load_chunk(&self, i: usize, out: &mut [Complex64]) -> Result<(), CodecError>;

    /// Stores `amps` as the new contents of chunk `i` (same length
    /// precondition as [`load_chunk`](ChunkStore::load_chunk)).
    fn store_chunk(&self, i: usize, amps: &[Complex64]) -> Result<(), CodecError>;

    /// Reads chunk `i`'s *compressed payload* without decoding it, for
    /// transfer modes that ship payloads to a device-side codec. Counts as
    /// a chunk visit like [`load_chunk`](ChunkStore::load_chunk), but no
    /// host decompression happens (and none is charged).
    ///
    /// `Ok(None)` means this tier stack cannot hand out a payload — no
    /// codec underneath, or a residency middleware may hold a copy newer
    /// than the stored bytes. Callers must then fall back to
    /// [`load_chunk`](ChunkStore::load_chunk).
    fn load_chunk_payload(&self, i: usize) -> Result<Option<Vec<u8>>, CodecError> {
        let _ = i;
        Ok(None)
    }

    /// Stores a compressed `payload` — produced by *this store's codec*
    /// over exactly [`chunk_amps`](ChunkStore::chunk_amps) amplitudes — as
    /// the new contents of chunk `i`, with no host codec round trip.
    ///
    /// Returns `Ok(false)` if the tier cannot accept payloads; callers must
    /// then decode on the host and [`store_chunk`](ChunkStore::store_chunk)
    /// instead.
    fn store_chunk_payload(&self, i: usize, payload: Vec<u8>) -> Result<bool, CodecError> {
        let _ = (i, payload);
        Ok(false)
    }

    /// Exchanges the stored contents of chunks `i` and `j` at the payload
    /// level — the fast path for high↔high layout remaps, where two chunks
    /// swap wholesale with no intra-chunk movement. Codec tiers swap the
    /// compressed bytes (and checksums) directly: **no decode, no visit**.
    ///
    /// Returns `Ok(false)` if this tier cannot exchange payloads; callers
    /// must then fall back to load/store through the normal path (which
    /// counts visits as usual). Implementations must leave counters
    /// untouched on the fast path so the visit accounting identity
    /// (`hits + misses == visits`) is preserved.
    fn swap_chunks(&self, i: usize, j: usize) -> Result<bool, CodecError> {
        let _ = (i, j);
        Ok(false)
    }

    /// Forces deferred work (dirty cache write-backs) down to the base
    /// representation, so external views of the stored bytes are coherent.
    fn flush(&self) -> Result<(), CodecError>;

    /// Current bytes the stored state occupies in CPU memory (compressed
    /// for codec tiers, raw for [`DenseStore`], in-memory portion only for
    /// [`SpillStore`]). With a write-back cache this can lag dirty resident
    /// copies; [`flush`](ChunkStore::flush) first for an up-to-date view.
    fn state_bytes(&self) -> usize;

    /// Peak of [`state_bytes`](ChunkStore::state_bytes) observed so far.
    fn peak_state_bytes(&self) -> usize;

    /// Peak bytes resident in CPU memory at any instant, including
    /// middleware copies (decompressed cache entries) — the number to hold
    /// against a memory budget.
    fn peak_resident_bytes(&self) -> usize;

    /// Monotonic operation totals for this tier stack.
    fn counters(&self) -> StoreCounters;

    /// Cumulative compress-call statistics (zero for tiers with no codec).
    fn cumulative_stats(&self) -> CompressionStats;

    /// Chunk indices a residency middleware currently holds decompressed
    /// (empty for tiers without one). Engines visit these first.
    fn resident_chunks(&self) -> Vec<usize> {
        Vec::new()
    }

    /// Attaches a per-run telemetry handle. Only the [`TelemetryTier`]
    /// reacts; inner tiers stay telemetry-free.
    fn attach_telemetry(&self, telemetry: Telemetry) {
        let _ = telemetry;
    }

    /// Detaches the telemetry handle, if any.
    fn detach_telemetry(&self) {}

    /// Sets (or clears, with `None`) the error allowance lossy codec work
    /// below this tier may spend per amplitude — the engine calls this at
    /// stage boundaries when a run-level fidelity budget is active. Tiers
    /// with a dynamically-boundable codec (see
    /// [`Codec::set_dynamic_bound`](mq_compress::Codec::set_dynamic_bound))
    /// forward to it; everything else ignores the call.
    fn set_error_allowance(&self, eb: Option<f64>) {
        let _ = eb;
    }

    /// Fault-injection hook: corrupt chunk `i`'s stored bytes so integrity
    /// checks can be tested. No-op on tiers without checksums.
    #[doc(hidden)]
    fn debug_corrupt_chunk(&self, i: usize) {
        let _ = i;
    }

    // --- provided helpers (geometry + whole-state reads) -----------------

    /// Amplitudes per chunk.
    fn chunk_amps(&self) -> usize {
        1usize << self.chunk_bits()
    }

    /// Number of chunks.
    fn chunk_count(&self) -> usize {
        1usize << (self.n_qubits() - self.chunk_bits())
    }

    /// Bytes a dense representation would need.
    fn dense_bytes(&self) -> usize {
        (1usize << self.n_qubits()) * 16
    }

    /// Current overall compression ratio (dense / resident state bytes).
    fn current_ratio(&self) -> f64 {
        let c = self.state_bytes();
        if c == 0 {
            return 1.0;
        }
        self.dense_bytes() as f64 / c as f64
    }

    /// Decompresses the whole state (exponential memory — small registers
    /// and verification only). Cache-resident chunks are read first so a
    /// miss can never evict a pending hit.
    fn to_dense(&self) -> Result<Vec<Complex64>, CodecError> {
        let mut out = vec![Complex64::ZERO; 1usize << self.n_qubits()];
        let ca = self.chunk_amps();
        let mut done = vec![false; self.chunk_count()];
        for i in self.resident_chunks() {
            if i < done.len() && !done[i] {
                self.load_chunk(i, &mut out[i * ca..(i + 1) * ca])?;
                done[i] = true;
            }
        }
        for (i, done) in done.iter().enumerate() {
            if !done {
                self.load_chunk(i, &mut out[i * ca..(i + 1) * ca])?;
            }
        }
        Ok(out)
    }

    /// L2 norm, computed streaming one chunk at a time (cache residents
    /// first — the sum is order-free).
    fn norm(&self) -> Result<f64, CodecError> {
        let mut buf = vec![Complex64::ZERO; self.chunk_amps()];
        let mut acc = 0.0f64;
        let mut done = vec![false; self.chunk_count()];
        for i in self.resident_chunks() {
            if i < done.len() && !done[i] {
                self.load_chunk(i, &mut buf)?;
                acc += buf.iter().map(|z| z.norm_sqr()).sum::<f64>();
                done[i] = true;
            }
        }
        for (i, done) in done.iter().enumerate() {
            if !done {
                self.load_chunk(i, &mut buf)?;
                acc += buf.iter().map(|z| z.norm_sqr()).sum::<f64>();
            }
        }
        Ok(acc.sqrt())
    }

    /// Rescales the state to unit norm, streaming chunk by chunk (two
    /// passes). Long lossy runs accumulate slight denormalization; calling
    /// this periodically (or before sampling) repairs it at the cost of one
    /// decompress/recompress round. No-op within `tol` of 1.
    fn renormalize(&self, tol: f64) -> Result<f64, CodecError> {
        let norm = self.norm()?;
        if norm <= 0.0 || (norm - 1.0).abs() <= tol {
            return Ok(norm);
        }
        let inv = 1.0 / norm;
        let mut buf = vec![Complex64::ZERO; self.chunk_amps()];
        for i in 0..self.chunk_count() {
            self.load_chunk(i, &mut buf)?;
            for z in buf.iter_mut() {
                *z = *z * inv;
            }
            self.store_chunk(i, &buf)?;
        }
        Ok(norm)
    }

    /// Born probability of one basis state (reads one chunk).
    fn probability(&self, basis: usize) -> Result<f64, CodecError> {
        assert!(
            basis < 1usize << self.n_qubits(),
            "basis state out of range"
        );
        let (chunk, off) = bits::split_index(basis, self.chunk_bits());
        let mut buf = vec![Complex64::ZERO; self.chunk_amps()];
        self.load_chunk(chunk, &mut buf)?;
        Ok(buf[off].norm_sqr())
    }
}

/// `Arc<S>` is a store wherever `S` is, so engine entry points taking
/// `&dyn ChunkStore` accept `&Arc<dyn ChunkStore>` (what [`build_store`]
/// returns) directly.
impl<S: ChunkStore + ?Sized> ChunkStore for Arc<S> {
    fn kind(&self) -> &'static str {
        (**self).kind()
    }

    fn n_qubits(&self) -> u32 {
        (**self).n_qubits()
    }

    fn chunk_bits(&self) -> u32 {
        (**self).chunk_bits()
    }

    fn load_chunk(&self, i: usize, out: &mut [Complex64]) -> Result<(), CodecError> {
        (**self).load_chunk(i, out)
    }

    fn store_chunk(&self, i: usize, amps: &[Complex64]) -> Result<(), CodecError> {
        (**self).store_chunk(i, amps)
    }

    fn load_chunk_payload(&self, i: usize) -> Result<Option<Vec<u8>>, CodecError> {
        (**self).load_chunk_payload(i)
    }

    fn store_chunk_payload(&self, i: usize, payload: Vec<u8>) -> Result<bool, CodecError> {
        (**self).store_chunk_payload(i, payload)
    }

    fn swap_chunks(&self, i: usize, j: usize) -> Result<bool, CodecError> {
        (**self).swap_chunks(i, j)
    }

    fn flush(&self) -> Result<(), CodecError> {
        (**self).flush()
    }

    fn state_bytes(&self) -> usize {
        (**self).state_bytes()
    }

    fn peak_state_bytes(&self) -> usize {
        (**self).peak_state_bytes()
    }

    fn peak_resident_bytes(&self) -> usize {
        (**self).peak_resident_bytes()
    }

    fn counters(&self) -> StoreCounters {
        (**self).counters()
    }

    fn cumulative_stats(&self) -> CompressionStats {
        (**self).cumulative_stats()
    }

    fn resident_chunks(&self) -> Vec<usize> {
        (**self).resident_chunks()
    }

    fn attach_telemetry(&self, telemetry: Telemetry) {
        (**self).attach_telemetry(telemetry)
    }

    fn detach_telemetry(&self) {
        (**self).detach_telemetry()
    }

    fn set_error_allowance(&self, eb: Option<f64>) {
        (**self).set_error_allowance(eb)
    }

    fn debug_corrupt_chunk(&self, i: usize) {
        (**self).debug_corrupt_chunk(i)
    }
}

/// Builds the configured storage stack holding the `|0...0>` state:
/// base tier per [`StoreKind`], wrapped in a [`ResidencyCache`] when
/// `cache_bytes` holds at least one chunk, wrapped in a [`TelemetryTier`]
/// outermost so engines can attach per-run counters.
///
/// Errors only for tiers that touch the filesystem ([`SpillStore`]).
pub fn build_store(n_qubits: u32, cfg: &MemQSimConfig) -> Result<Arc<dyn ChunkStore>, CodecError> {
    let chunk_bits = cfg.effective_chunk_bits(n_qubits);
    let codec: Arc<dyn mq_compress::Codec> =
        Arc::from(cfg.codec.build_with_precision(cfg.precision));
    let base: Arc<dyn ChunkStore> = match cfg.store_kind {
        StoreKind::Compressed => Arc::new(CompressedTier::zero_state(n_qubits, chunk_bits, codec)),
        StoreKind::Dense => Arc::new(DenseStore::zero_state(n_qubits, chunk_bits)),
        StoreKind::Spill { resident_budget } => Arc::new(SpillStore::zero_state(
            n_qubits,
            chunk_bits,
            codec,
            resident_budget,
        )?),
    };
    Ok(wrap_middleware(base, cfg))
}

/// Like [`build_store`], but compressing an existing dense state.
///
/// # Panics
/// Panics if `amps.len()` is not a power of two.
pub fn build_store_from_amplitudes(
    amps: &[Complex64],
    cfg: &MemQSimConfig,
) -> Result<Arc<dyn ChunkStore>, CodecError> {
    assert!(bits::is_pow2(amps.len()), "length must be a power of two");
    let n_qubits = bits::floor_log2(amps.len());
    let chunk_bits = cfg.effective_chunk_bits(n_qubits);
    let codec: Arc<dyn mq_compress::Codec> =
        Arc::from(cfg.codec.build_with_precision(cfg.precision));
    let base: Arc<dyn ChunkStore> = match cfg.store_kind {
        StoreKind::Compressed => Arc::new(CompressedTier::from_amplitudes(amps, chunk_bits, codec)),
        StoreKind::Dense => Arc::new(DenseStore::from_amplitudes(amps, chunk_bits)),
        StoreKind::Spill { resident_budget } => Arc::new(SpillStore::from_amplitudes(
            amps,
            chunk_bits,
            codec,
            resident_budget,
        )?),
    };
    Ok(wrap_middleware(base, cfg))
}

fn wrap_middleware(base: Arc<dyn ChunkStore>, cfg: &MemQSimConfig) -> Arc<dyn ChunkStore> {
    let entry_bytes = base.chunk_amps() * 16;
    let cached: Arc<dyn ChunkStore> = if cfg.cache_bytes >= entry_bytes {
        Arc::new(ResidencyCache::new(base, cfg.cache_bytes, cfg.cache_policy))
    } else {
        base
    };
    Arc::new(TelemetryTier::new(cached))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_compress::CodecSpec;

    fn cfg(kind: StoreKind) -> MemQSimConfig {
        MemQSimConfig {
            chunk_bits: 4,
            store_kind: kind,
            ..Default::default()
        }
    }

    #[test]
    fn factory_builds_every_kind_as_zero_state() {
        for kind in [
            StoreKind::Compressed,
            StoreKind::Dense,
            StoreKind::Spill {
                resident_budget: 1 << 16,
            },
        ] {
            let store = build_store(8, &cfg(kind)).unwrap();
            assert_eq!(store.n_qubits(), 8);
            assert_eq!(store.chunk_bits(), 4);
            assert_eq!(store.chunk_count(), 16);
            let dense = store.to_dense().unwrap();
            assert!((dense[0].re - 1.0).abs() < 1e-9, "{kind:?}");
            assert!(dense[1..].iter().all(|z| z.norm() < 1e-9), "{kind:?}");
        }
    }

    #[test]
    fn factory_wraps_cache_only_when_budget_holds_a_chunk() {
        let mut c = cfg(StoreKind::Compressed);
        c.cache_bytes = 4 * (1usize << 4) * 16;
        let cached = build_store(8, &c).unwrap();
        let mut buf = vec![Complex64::ZERO; cached.chunk_amps()];
        cached.load_chunk(0, &mut buf).unwrap();
        assert_eq!(cached.resident_chunks(), vec![0]);

        c.cache_bytes = 8; // below one chunk: no cache layer
        let uncached = build_store(8, &c).unwrap();
        uncached.load_chunk(0, &mut buf).unwrap();
        assert!(uncached.resident_chunks().is_empty());
    }

    #[test]
    fn buffer_mismatch_is_typed_on_every_kind() {
        for kind in [
            StoreKind::Compressed,
            StoreKind::Dense,
            StoreKind::Spill {
                resident_budget: 1 << 16,
            },
        ] {
            let store = build_store(8, &cfg(kind)).unwrap();
            let mut short = vec![Complex64::ZERO; 3];
            assert!(matches!(
                store.load_chunk(0, &mut short),
                Err(CodecError::BufferMismatch {
                    expected: 16,
                    got: 3
                })
            ));
            assert!(matches!(
                store.store_chunk(0, &short),
                Err(CodecError::BufferMismatch {
                    expected: 16,
                    got: 3
                })
            ));
        }
    }

    #[test]
    fn from_amplitudes_round_trips_on_every_kind() {
        let amps: Vec<Complex64> = (0..64)
            .map(|i| mq_num::complex::c64((i as f64 * 0.03).sin() * 0.1, 0.01))
            .collect();
        let mut c = cfg(StoreKind::Compressed);
        c.codec = CodecSpec::Fpc;
        for kind in [
            StoreKind::Compressed,
            StoreKind::Dense,
            StoreKind::Spill {
                resident_budget: 256,
            },
        ] {
            c.store_kind = kind;
            let store = build_store_from_amplitudes(&amps, &c).unwrap();
            assert_eq!(store.to_dense().unwrap(), amps, "{kind:?}");
        }
    }
}
