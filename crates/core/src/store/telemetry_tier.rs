//! The telemetry middleware: owns counter emission for the whole stack.

use super::{ChunkStore, StoreCounters};
use mq_compress::{CodecError, CompressionStats};
use mq_num::Complex64;
use mq_telemetry::{Counter, Telemetry};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How many [`StoreCounters`] fields map onto [`Counter`] variants.
const N: usize = 15;

/// The stack's counter totals paired with their telemetry counters, in a
/// fixed order shared by the emission bookkeeping.
fn fields(c: &StoreCounters) -> [(Counter, u64); N] {
    [
        (Counter::ChunkVisits, c.chunk_visits),
        (Counter::BytesDecompressed, c.bytes_decompressed),
        (Counter::BytesCompressed, c.bytes_compressed),
        (Counter::CacheHits, c.cache_hits),
        (Counter::CacheMisses, c.cache_misses),
        (Counter::RecompressSkipped, c.recompress_skipped),
        (Counter::Evictions, c.evictions),
        (Counter::SpillBytesWritten, c.spill_bytes_written),
        (Counter::SpillBytesRead, c.spill_bytes_read),
        (Counter::CodecPicksZeroRle, c.codec_picks_zero_rle),
        (Counter::CodecPicksFpc, c.codec_picks_fpc),
        (Counter::CodecPicksShuffleLzss, c.codec_picks_shuffle_lzss),
        (Counter::CodecPicksSz, c.codec_picks_sz),
        (Counter::MixedPrecisionChunks, c.mixed_precision_chunks),
        (Counter::LossyEncodes, c.lossy_encodes),
    ]
}

/// Translates the inner stack's plain atomic totals into an attached
/// per-run [`Telemetry`] handle, so inner tiers never name a telemetry
/// type.
///
/// While a handle is attached, every operation through this tier diffs the
/// inner [`StoreCounters`] against an "emitted so far" watermark and adds
/// the delta to the run record — counters are visible in real time, not
/// just at detach. The watermark advances with a monotone compare-exchange,
/// which is race-free under concurrent operations because the inner totals
/// only grow: whichever thread wins the exchange emits exactly the
/// uncovered delta. Attachment snapshots the current totals first, so
/// traffic from before the run (state initialization) never lands in the
/// record.
pub struct TelemetryTier {
    inner: Arc<dyn ChunkStore>,
    /// Read locks only on the per-chunk hot path; write locks on
    /// attach/detach.
    telemetry: RwLock<Option<Telemetry>>,
    /// Per-counter totals already added to the attached handle.
    emitted: [AtomicU64; N],
}

impl TelemetryTier {
    /// Wraps `inner` as the outermost tier of a storage stack.
    pub fn new(inner: Arc<dyn ChunkStore>) -> Self {
        TelemetryTier {
            inner,
            telemetry: RwLock::new(None),
            emitted: [const { AtomicU64::new(0) }; N],
        }
    }

    /// The wrapped inner store.
    pub fn inner(&self) -> &Arc<dyn ChunkStore> {
        &self.inner
    }

    /// Emits any counter growth since the last sync into the attached
    /// handle (no-op when detached).
    fn sync(&self) {
        let guard = self.telemetry.read();
        let Some(t) = guard.as_ref() else { return };
        for (slot, (counter, total)) in self.emitted.iter().zip(fields(&self.inner.counters())) {
            loop {
                let seen = slot.load(Ordering::Relaxed);
                if total <= seen {
                    break;
                }
                if slot
                    .compare_exchange(seen, total, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    t.add(counter, total - seen);
                    break;
                }
            }
        }
    }
}

impl ChunkStore for TelemetryTier {
    fn kind(&self) -> &'static str {
        self.inner.kind()
    }

    fn n_qubits(&self) -> u32 {
        self.inner.n_qubits()
    }

    fn chunk_bits(&self) -> u32 {
        self.inner.chunk_bits()
    }

    fn load_chunk(&self, i: usize, out: &mut [Complex64]) -> Result<(), CodecError> {
        let result = self.inner.load_chunk(i, out);
        self.sync();
        result
    }

    fn store_chunk(&self, i: usize, amps: &[Complex64]) -> Result<(), CodecError> {
        let result = self.inner.store_chunk(i, amps);
        self.sync();
        result
    }

    fn load_chunk_payload(&self, i: usize) -> Result<Option<Vec<u8>>, CodecError> {
        let result = self.inner.load_chunk_payload(i);
        self.sync();
        result
    }

    fn store_chunk_payload(&self, i: usize, payload: Vec<u8>) -> Result<bool, CodecError> {
        let result = self.inner.store_chunk_payload(i, payload);
        self.sync();
        result
    }

    fn swap_chunks(&self, i: usize, j: usize) -> Result<bool, CodecError> {
        let result = self.inner.swap_chunks(i, j);
        self.sync();
        result
    }

    fn flush(&self) -> Result<(), CodecError> {
        let result = self.inner.flush();
        self.sync();
        result
    }

    fn state_bytes(&self) -> usize {
        self.inner.state_bytes()
    }

    fn peak_state_bytes(&self) -> usize {
        self.inner.peak_state_bytes()
    }

    fn peak_resident_bytes(&self) -> usize {
        self.inner.peak_resident_bytes()
    }

    fn counters(&self) -> StoreCounters {
        self.inner.counters()
    }

    fn cumulative_stats(&self) -> CompressionStats {
        self.inner.cumulative_stats()
    }

    fn resident_chunks(&self) -> Vec<usize> {
        self.inner.resident_chunks()
    }

    /// Attaches a handle: until [`ChunkStore::detach_telemetry`] is
    /// called, every chunk load/store contributes
    /// to the run's counter record. Engines attach at run start and detach
    /// before returning. Totals accumulated before the attach (state
    /// initialization) are excluded.
    fn attach_telemetry(&self, telemetry: Telemetry) {
        let mut guard = self.telemetry.write();
        for (slot, (_, total)) in self.emitted.iter().zip(fields(&self.inner.counters())) {
            slot.store(total, Ordering::Relaxed);
        }
        *guard = Some(telemetry);
    }

    /// Final-syncs and detaches the handle, if any.
    fn detach_telemetry(&self) {
        let mut guard = self.telemetry.write();
        if let Some(t) = guard.as_ref() {
            for (slot, (counter, total)) in self.emitted.iter().zip(fields(&self.inner.counters()))
            {
                let seen = slot.swap(total, Ordering::Relaxed);
                if total > seen {
                    t.add(counter, total - seen);
                }
            }
        }
        *guard = None;
    }

    fn set_error_allowance(&self, eb: Option<f64>) {
        self.inner.set_error_allowance(eb);
    }

    fn debug_corrupt_chunk(&self, i: usize) {
        self.inner.debug_corrupt_chunk(i);
    }
}

impl std::fmt::Debug for TelemetryTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryTier")
            .field("inner", &self.inner.kind())
            .field("attached", &self.telemetry.read().is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::super::{CachePolicy, CompressedTier, ResidencyCache};
    use super::*;
    use mq_compress::SzCodec;

    fn stack(cache_entries: usize) -> TelemetryTier {
        let base: Arc<dyn ChunkStore> = Arc::new(CompressedTier::zero_state(
            8,
            4,
            Arc::new(SzCodec::new(1e-12)),
        ));
        let inner: Arc<dyn ChunkStore> = if cache_entries > 0 {
            Arc::new(ResidencyCache::new(
                base,
                cache_entries * 16 * 16,
                CachePolicy::WriteBack,
            ))
        } else {
            base
        };
        TelemetryTier::new(inner)
    }

    #[test]
    fn attach_detach_counts_codec_traffic() {
        let store = stack(0);
        let t = Telemetry::new();
        store.attach_telemetry(t.clone());
        let mut buf = vec![Complex64::ZERO; 16];
        store.load_chunk(0, &mut buf).unwrap();
        store.store_chunk(1, &buf).unwrap();
        assert_eq!(t.counter(Counter::ChunkVisits), 1);
        assert!(t.counter(Counter::BytesDecompressed) > 0);
        assert!(t.counter(Counter::BytesCompressed) > 0);
        // No cache configured: the cache counters stay silent.
        assert_eq!(t.counter(Counter::CacheHits), 0);
        assert_eq!(t.counter(Counter::CacheMisses), 0);
        // After detaching, traffic no longer lands in the record.
        store.detach_telemetry();
        let before = t.counter(Counter::ChunkVisits);
        store.load_chunk(2, &mut buf).unwrap();
        assert_eq!(t.counter(Counter::ChunkVisits), before);
    }

    #[test]
    fn attach_excludes_initialization_traffic() {
        let store = stack(0);
        assert!(store.counters().bytes_compressed > 0, "init wrote chunks");
        let t = Telemetry::new();
        store.attach_telemetry(t.clone());
        assert_eq!(t.counter(Counter::BytesCompressed), 0);
        assert_eq!(t.counter(Counter::ChunkVisits), 0);
    }

    #[test]
    fn counters_are_visible_per_operation_not_just_at_detach() {
        let store = stack(0);
        let t = Telemetry::new();
        store.attach_telemetry(t.clone());
        let mut buf = vec![Complex64::ZERO; 16];
        for expected in 1..=3u64 {
            store.load_chunk(0, &mut buf).unwrap();
            assert_eq!(t.counter(Counter::ChunkVisits), expected);
        }
    }

    #[test]
    fn cached_stack_emits_hit_and_miss_counters() {
        let store = stack(4);
        let t = Telemetry::new();
        store.attach_telemetry(t.clone());
        let mut buf = vec![Complex64::ZERO; 16];
        store.load_chunk(0, &mut buf).unwrap(); // miss
        store.load_chunk(0, &mut buf).unwrap(); // hit
        assert_eq!(t.counter(Counter::CacheMisses), 1);
        assert_eq!(t.counter(Counter::CacheHits), 1);
        assert_eq!(
            t.counter(Counter::CacheHits) + t.counter(Counter::CacheMisses),
            t.counter(Counter::ChunkVisits)
        );
        store.detach_telemetry();
    }

    #[test]
    fn reattach_only_reports_new_traffic() {
        let store = stack(0);
        let mut buf = vec![Complex64::ZERO; 16];
        let t1 = Telemetry::new();
        store.attach_telemetry(t1.clone());
        store.load_chunk(0, &mut buf).unwrap();
        store.detach_telemetry();
        assert_eq!(t1.counter(Counter::ChunkVisits), 1);
        let t2 = Telemetry::new();
        store.attach_telemetry(t2.clone());
        store.load_chunk(1, &mut buf).unwrap();
        store.load_chunk(2, &mut buf).unwrap();
        store.detach_telemetry();
        assert_eq!(t2.counter(Counter::ChunkVisits), 2);
        assert_eq!(t1.counter(Counter::ChunkVisits), 1);
    }
}
