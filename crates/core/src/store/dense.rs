//! The uncompressed base tier: chunks resident as raw amplitudes.

use super::{expect_chunk_len, ChunkStore, StoreCounters};
use mq_compress::{CodecError, CompressionStats};
use mq_num::{bits, Complex64};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// The no-codec baseline tier: every chunk stays decompressed in CPU
/// memory. Useful for small widths where codec overhead dominates, and as
/// the truthful "no compression" comparison point for benches — same chunk
/// streaming, zero codec traffic, `dense_bytes` footprint.
pub struct DenseStore {
    n_qubits: u32,
    chunk_bits: u32,
    chunks: Vec<Mutex<Vec<Complex64>>>,
    visits: AtomicU64,
}

impl DenseStore {
    /// Builds the dense `|0...0>` state.
    pub fn zero_state(n_qubits: u32, chunk_bits: u32) -> Self {
        let chunk_bits = chunk_bits.min(n_qubits);
        let chunk_amps = 1usize << chunk_bits;
        let chunk_count = 1usize << (n_qubits - chunk_bits);
        let store = DenseStore {
            n_qubits,
            chunk_bits,
            chunks: (0..chunk_count)
                .map(|_| Mutex::new(vec![Complex64::ZERO; chunk_amps]))
                .collect(),
            visits: AtomicU64::new(0),
        };
        store.chunks[0].lock()[0] = Complex64::ONE;
        store
    }

    /// Chunks an existing dense state.
    ///
    /// # Panics
    /// Panics if `amps.len()` is not a power of two.
    pub fn from_amplitudes(amps: &[Complex64], chunk_bits: u32) -> Self {
        assert!(bits::is_pow2(amps.len()), "length must be a power of two");
        let n_qubits = bits::floor_log2(amps.len());
        let chunk_bits = chunk_bits.min(n_qubits);
        let chunk_amps = 1usize << chunk_bits;
        DenseStore {
            n_qubits,
            chunk_bits,
            chunks: amps
                .chunks_exact(chunk_amps)
                .map(|piece| Mutex::new(piece.to_vec()))
                .collect(),
            visits: AtomicU64::new(0),
        }
    }
}

impl ChunkStore for DenseStore {
    fn kind(&self) -> &'static str {
        "dense"
    }

    fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    fn chunk_bits(&self) -> u32 {
        self.chunk_bits
    }

    fn load_chunk(&self, i: usize, out: &mut [Complex64]) -> Result<(), CodecError> {
        expect_chunk_len(self.chunk_amps(), out.len())?;
        out.copy_from_slice(&self.chunks[i].lock());
        self.visits.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn store_chunk(&self, i: usize, amps: &[Complex64]) -> Result<(), CodecError> {
        expect_chunk_len(self.chunk_amps(), amps.len())?;
        self.chunks[i].lock().copy_from_slice(amps);
        Ok(())
    }

    /// Swaps the two chunks' amplitude vectors wholesale (pointer swap
    /// under both locks) — no copy, no visit.
    fn swap_chunks(&self, i: usize, j: usize) -> Result<bool, CodecError> {
        if i == j {
            return Ok(true);
        }
        let (lo, hi) = (i.min(j), i.max(j));
        let mut a = self.chunks[lo].lock();
        let mut b = self.chunks[hi].lock();
        std::mem::swap(&mut *a, &mut *b);
        Ok(true)
    }

    fn flush(&self) -> Result<(), CodecError> {
        Ok(())
    }

    /// Always the full dense footprint — this tier never shrinks.
    fn state_bytes(&self) -> usize {
        self.dense_bytes()
    }

    fn peak_state_bytes(&self) -> usize {
        self.dense_bytes()
    }

    fn peak_resident_bytes(&self) -> usize {
        self.dense_bytes()
    }

    fn counters(&self) -> StoreCounters {
        StoreCounters {
            chunk_visits: self.visits.load(Ordering::Relaxed),
            ..StoreCounters::default()
        }
    }

    fn cumulative_stats(&self) -> CompressionStats {
        CompressionStats::default()
    }
}

impl std::fmt::Debug for DenseStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DenseStore")
            .field("n_qubits", &self.n_qubits)
            .field("chunk_bits", &self.chunk_bits)
            .field("chunks", &self.chunks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_num::complex::c64;

    #[test]
    fn zero_state_round_trips_exactly() {
        let store = DenseStore::zero_state(10, 4);
        assert_eq!(store.chunk_count(), 64);
        let dense = store.to_dense().unwrap();
        assert_eq!(dense[0], Complex64::ONE);
        assert!(dense[1..].iter().all(|z| *z == Complex64::ZERO));
        assert!((store.norm().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stores_are_bit_exact() {
        let store = DenseStore::zero_state(6, 3);
        let buf: Vec<Complex64> = (0..8).map(|k| c64(k as f64 * 0.1, -0.2)).collect();
        store.store_chunk(5, &buf).unwrap();
        let mut back = vec![Complex64::ZERO; 8];
        store.load_chunk(5, &mut back).unwrap();
        assert_eq!(back, buf);
    }

    #[test]
    fn footprint_is_the_dense_footprint() {
        let store = DenseStore::zero_state(10, 4);
        assert_eq!(store.state_bytes(), (1 << 10) * 16);
        assert_eq!(store.peak_resident_bytes(), store.dense_bytes());
        assert!((store.current_ratio() - 1.0).abs() < 1e-12);
        assert_eq!(store.cumulative_stats().blocks, 0);
    }

    #[test]
    fn swap_chunks_exchanges_without_visits() {
        let store = DenseStore::zero_state(6, 3);
        let buf: Vec<Complex64> = (0..8).map(|k| c64(k as f64, 0.5)).collect();
        store.store_chunk(2, &buf).unwrap();
        assert!(store.swap_chunks(2, 7).unwrap());
        assert_eq!(store.counters().chunk_visits, 0);
        let mut back = vec![Complex64::ZERO; 8];
        store.load_chunk(7, &mut back).unwrap();
        assert_eq!(back, buf);
        store.load_chunk(2, &mut back).unwrap();
        assert!(back.iter().all(|z| *z == Complex64::ZERO));
    }

    #[test]
    fn visits_counted_no_codec_traffic() {
        let store = DenseStore::zero_state(6, 3);
        let mut buf = vec![Complex64::ZERO; 8];
        store.load_chunk(0, &mut buf).unwrap();
        store.load_chunk(1, &mut buf).unwrap();
        let c = store.counters();
        assert_eq!(c.chunk_visits, 2);
        assert_eq!(c.bytes_decompressed, 0);
        assert_eq!(c.bytes_compressed, 0);
    }
}
