//! The codec + checksum base tier: chunks resident as compressed bytes.

use super::{expect_chunk_len, fnv1a, ChunkStore, StoreCounters};
use mq_compress::{compress_complex, decompress_complex, Codec, CodecError, CompressionStats};
use mq_num::{bits, Complex64};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// One resident chunk: compressed bytes + integrity checksum.
#[derive(Debug, Default)]
struct ChunkSlot {
    bytes: Vec<u8>,
    checksum: u64,
}

/// The compressed chunk tier — MEMQSIM's headline representation.
///
/// Every chunk lives in CPU memory as codec-compressed bytes guarded by an
/// FNV-1a checksum, individually locked so pipeline threads and "idle core"
/// workers stream different chunks concurrently. Running totals of resident
/// compressed bytes and their peak are the numbers behind the paper's
/// "+5 qubits in the same memory" claim.
///
/// This tier is deliberately minimal: no residency cache, no telemetry.
/// Wrap it in a [`ResidencyCache`](super::ResidencyCache) and a
/// [`TelemetryTier`](super::TelemetryTier) — or let
/// [`build_store`](super::build_store) do it — for the full stack.
pub struct CompressedTier {
    n_qubits: u32,
    chunk_bits: u32,
    codec: Arc<dyn Codec>,
    chunks: Vec<Mutex<ChunkSlot>>,
    stats: Mutex<CompressionStats>,
    current_bytes: AtomicUsize,
    peak_bytes: AtomicUsize,
    visits: AtomicU64,
    bytes_decompressed: AtomicU64,
    bytes_compressed: AtomicU64,
    // Adaptive-codec pick histogram, populated from the payload headers of
    // self-describing codecs (static codecs report no metadata and leave
    // these at zero).
    picks_zero_rle: AtomicU64,
    picks_fpc: AtomicU64,
    picks_shuffle_lzss: AtomicU64,
    picks_sz: AtomicU64,
    mixed_precision_chunks: AtomicU64,
    lossy_encodes: AtomicU64,
}

impl CompressedTier {
    fn new_empty(n_qubits: u32, chunk_bits: u32, codec: Arc<dyn Codec>) -> Self {
        let chunk_count = 1usize << (n_qubits - chunk_bits);
        CompressedTier {
            n_qubits,
            chunk_bits,
            codec,
            chunks: (0..chunk_count)
                .map(|_| Mutex::new(ChunkSlot::default()))
                .collect(),
            stats: Mutex::new(CompressionStats::default()),
            current_bytes: AtomicUsize::new(0),
            peak_bytes: AtomicUsize::new(0),
            visits: AtomicU64::new(0),
            bytes_decompressed: AtomicU64::new(0),
            bytes_compressed: AtomicU64::new(0),
            picks_zero_rle: AtomicU64::new(0),
            picks_fpc: AtomicU64::new(0),
            picks_shuffle_lzss: AtomicU64::new(0),
            picks_sz: AtomicU64::new(0),
            mixed_precision_chunks: AtomicU64::new(0),
            lossy_encodes: AtomicU64::new(0),
        }
    }

    /// Builds the compressed `|0...0>` state.
    pub fn zero_state(n_qubits: u32, chunk_bits: u32, codec: Arc<dyn Codec>) -> Self {
        let chunk_bits = chunk_bits.min(n_qubits);
        let chunk_amps = 1usize << chunk_bits;
        let chunk_count = 1usize << (n_qubits - chunk_bits);
        let store = CompressedTier::new_empty(n_qubits, chunk_bits, codec);
        let mut buf = vec![Complex64::ZERO; chunk_amps];
        buf[0] = Complex64::ONE;
        store.write_slot(0, &buf);
        buf[0] = Complex64::ZERO;
        for i in 1..chunk_count {
            store.write_slot(i, &buf);
        }
        store
    }

    /// Compresses an existing dense state.
    ///
    /// # Panics
    /// Panics if `amps.len()` is not a power of two.
    pub fn from_amplitudes(amps: &[Complex64], chunk_bits: u32, codec: Arc<dyn Codec>) -> Self {
        assert!(bits::is_pow2(amps.len()), "length must be a power of two");
        let n_qubits = bits::floor_log2(amps.len());
        let chunk_bits = chunk_bits.min(n_qubits);
        let chunk_amps = 1usize << chunk_bits;
        let store = CompressedTier::new_empty(n_qubits, chunk_bits, codec);
        for (i, piece) in amps.chunks_exact(chunk_amps).enumerate() {
            store.write_slot(i, piece);
        }
        store
    }

    /// The codec in use.
    pub fn codec(&self) -> &Arc<dyn Codec> {
        &self.codec
    }

    /// Compresses `amps` and commits the result to slot `i`.
    fn write_slot(&self, i: usize, amps: &[Complex64]) {
        let bytes = compress_complex(self.codec.as_ref(), amps);
        let new_len = bytes.len();
        self.commit_slot(i, bytes);
        self.bytes_compressed
            .fetch_add(new_len as u64, Ordering::Relaxed);
    }

    /// Commits already-compressed `bytes` to slot `i`. The signed-delta
    /// byte update and the stats recording happen while still serialized
    /// on the slot, so `peak_bytes` cannot transiently overshoot by the
    /// old chunk's length.
    fn commit_slot(&self, i: usize, bytes: Vec<u8>) {
        let new_len = bytes.len();
        let checksum = fnv1a(&bytes);
        if let Some(meta) = self.codec.payload_meta(&bytes) {
            let pick = match meta.codec {
                "zero-rle" => Some(&self.picks_zero_rle),
                "fpc" => Some(&self.picks_fpc),
                "shuffle-lzss" => Some(&self.picks_shuffle_lzss),
                "sz" => Some(&self.picks_sz),
                _ => None,
            };
            if let Some(counter) = pick {
                counter.fetch_add(1, Ordering::Relaxed);
            }
            if meta.f32_packed {
                self.mixed_precision_chunks.fetch_add(1, Ordering::Relaxed);
            }
            if !meta.lossless {
                self.lossy_encodes.fetch_add(1, Ordering::Relaxed);
            }
        }
        let guard = &mut *self.chunks[i].lock();
        let old_len = guard.bytes.len();
        *guard = ChunkSlot { bytes, checksum };
        let cur = if new_len >= old_len {
            let d = new_len - old_len;
            self.current_bytes.fetch_add(d, Ordering::Relaxed) + d
        } else {
            let d = old_len - new_len;
            self.current_bytes.fetch_sub(d, Ordering::Relaxed) - d
        };
        self.peak_bytes.fetch_max(cur, Ordering::Relaxed);
        self.stats.lock().record(self.chunk_amps() * 16, new_len);
    }
}

impl ChunkStore for CompressedTier {
    fn kind(&self) -> &'static str {
        "compressed"
    }

    fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    fn chunk_bits(&self) -> u32 {
        self.chunk_bits
    }

    /// Decompresses chunk `i` into `out`. The chunk's integrity checksum is
    /// verified first, so silent memory corruption surfaces as a typed error
    /// rather than garbage amplitudes.
    fn load_chunk(&self, i: usize, out: &mut [Complex64]) -> Result<(), CodecError> {
        expect_chunk_len(self.chunk_amps(), out.len())?;
        let guard = self.chunks[i].lock();
        if fnv1a(&guard.bytes) != guard.checksum {
            return Err(CodecError::Corrupt(format!(
                "chunk {i} failed its integrity checksum"
            )));
        }
        self.visits.fetch_add(1, Ordering::Relaxed);
        self.bytes_decompressed
            .fetch_add(guard.bytes.len() as u64, Ordering::Relaxed);
        decompress_complex(self.codec.as_ref(), &guard.bytes, out)
    }

    fn store_chunk(&self, i: usize, amps: &[Complex64]) -> Result<(), CodecError> {
        expect_chunk_len(self.chunk_amps(), amps.len())?;
        self.write_slot(i, amps);
        Ok(())
    }

    /// Hands out chunk `i`'s compressed bytes verbatim (checksum-verified),
    /// counting a visit but no host decompression — the codec work happens
    /// wherever the payload is shipped.
    fn load_chunk_payload(&self, i: usize) -> Result<Option<Vec<u8>>, CodecError> {
        let guard = self.chunks[i].lock();
        if fnv1a(&guard.bytes) != guard.checksum {
            return Err(CodecError::Corrupt(format!(
                "chunk {i} failed its integrity checksum"
            )));
        }
        self.visits.fetch_add(1, Ordering::Relaxed);
        Ok(Some(guard.bytes.clone()))
    }

    /// Accepts an externally produced payload (same codec) as chunk `i`'s
    /// new contents. Byte/peak/stats accounting matches
    /// [`store_chunk`](ChunkStore::store_chunk), but `bytes_compressed`
    /// does not tick — no host compression happened.
    fn store_chunk_payload(&self, i: usize, payload: Vec<u8>) -> Result<bool, CodecError> {
        self.commit_slot(i, payload);
        Ok(true)
    }

    /// Swaps the compressed payloads (and checksums) of chunks `i` and `j`
    /// wholesale — the high↔high remap fast path. No codec round trip, no
    /// visit, and total resident bytes are unchanged.
    fn swap_chunks(&self, i: usize, j: usize) -> Result<bool, CodecError> {
        if i == j {
            return Ok(true);
        }
        // Lock in index order so concurrent swaps cannot deadlock.
        let (lo, hi) = (i.min(j), i.max(j));
        let mut a = self.chunks[lo].lock();
        let mut b = self.chunks[hi].lock();
        std::mem::swap(&mut *a, &mut *b);
        Ok(true)
    }

    fn flush(&self) -> Result<(), CodecError> {
        Ok(())
    }

    fn state_bytes(&self) -> usize {
        self.current_bytes.load(Ordering::Relaxed)
    }

    fn peak_state_bytes(&self) -> usize {
        self.peak_bytes.load(Ordering::Relaxed)
    }

    fn peak_resident_bytes(&self) -> usize {
        self.peak_state_bytes()
    }

    fn counters(&self) -> StoreCounters {
        StoreCounters {
            chunk_visits: self.visits.load(Ordering::Relaxed),
            bytes_decompressed: self.bytes_decompressed.load(Ordering::Relaxed),
            bytes_compressed: self.bytes_compressed.load(Ordering::Relaxed),
            codec_picks_zero_rle: self.picks_zero_rle.load(Ordering::Relaxed),
            codec_picks_fpc: self.picks_fpc.load(Ordering::Relaxed),
            codec_picks_shuffle_lzss: self.picks_shuffle_lzss.load(Ordering::Relaxed),
            codec_picks_sz: self.picks_sz.load(Ordering::Relaxed),
            mixed_precision_chunks: self.mixed_precision_chunks.load(Ordering::Relaxed),
            lossy_encodes: self.lossy_encodes.load(Ordering::Relaxed),
            ..StoreCounters::default()
        }
    }

    fn cumulative_stats(&self) -> CompressionStats {
        *self.stats.lock()
    }

    fn set_error_allowance(&self, eb: Option<f64>) {
        self.codec.set_dynamic_bound(eb);
    }

    fn debug_corrupt_chunk(&self, i: usize) {
        let mut guard = self.chunks[i].lock();
        if let Some(b) = guard.bytes.first_mut() {
            *b ^= 0xFF;
        }
    }
}

impl std::fmt::Debug for CompressedTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompressedTier")
            .field("n_qubits", &self.n_qubits)
            .field("chunk_bits", &self.chunk_bits)
            .field("codec", &self.codec.name())
            .field("chunks", &self.chunks.len())
            .field("state_bytes", &self.state_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_compress::{CodecSpec, SzCodec, ZeroRleCodec};
    use mq_num::complex::c64;

    fn sz(eb: f64) -> Arc<dyn Codec> {
        Arc::new(SzCodec::new(eb))
    }

    #[test]
    fn zero_state_round_trips() {
        let store = CompressedTier::zero_state(10, 4, sz(1e-12));
        assert_eq!(store.chunk_count(), 64);
        assert_eq!(store.chunk_amps(), 16);
        let dense = store.to_dense().unwrap();
        assert!((dense[0].re - 1.0).abs() <= 1e-12);
        assert!(dense[1..].iter().all(|z| z.norm() <= 2e-12));
        assert!((store.norm().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_state_compresses_massively() {
        let store = CompressedTier::zero_state(16, 10, Arc::new(ZeroRleCodec));
        assert!(
            store.current_ratio() > 100.0,
            "ratio {}",
            store.current_ratio()
        );
        assert!(store.state_bytes() < store.dense_bytes() / 100);
    }

    #[test]
    fn from_amplitudes_round_trips_within_bound() {
        let eb = 1e-8;
        let amps: Vec<Complex64> = (0..1024)
            .map(|i| {
                c64(
                    (i as f64 * 0.01).sin() * 0.03,
                    (i as f64 * 0.02).cos() * 0.03,
                )
            })
            .collect();
        let store = CompressedTier::from_amplitudes(&amps, 6, sz(eb));
        let back = store.to_dense().unwrap();
        for (a, b) in amps.iter().zip(&back) {
            assert!((a.re - b.re).abs() <= eb);
            assert!((a.im - b.im).abs() <= eb);
        }
    }

    #[test]
    fn chunk_update_cycle() {
        let store = CompressedTier::zero_state(6, 3, sz(1e-12));
        let mut buf = vec![Complex64::ZERO; 8];
        store.load_chunk(3, &mut buf).unwrap();
        assert!(buf.iter().all(|z| z.norm() < 1e-11));
        for (k, z) in buf.iter_mut().enumerate() {
            *z = c64(k as f64 * 0.1, 0.0);
        }
        store.store_chunk(3, &buf).unwrap();
        let mut buf2 = vec![Complex64::ZERO; 8];
        store.load_chunk(3, &mut buf2).unwrap();
        for (a, b) in buf.iter().zip(&buf2) {
            assert!((a.re - b.re).abs() <= 1e-11);
        }
    }

    #[test]
    fn chunk_bits_clamped_to_register() {
        let store = CompressedTier::zero_state(3, 10, sz(1e-12));
        assert_eq!(store.chunk_bits(), 3);
        assert_eq!(store.chunk_count(), 1);
    }

    #[test]
    fn probability_reads_single_chunk() {
        let mut amps = vec![Complex64::ZERO; 64];
        amps[37] = Complex64::ONE;
        let store = CompressedTier::from_amplitudes(&amps, 3, sz(1e-12));
        assert!((store.probability(37).unwrap() - 1.0).abs() < 1e-9);
        assert!(store.probability(36).unwrap() < 1e-9);
    }

    #[test]
    fn byte_accounting_tracks_updates() {
        let store = CompressedTier::zero_state(8, 4, sz(1e-12));
        let initial = store.state_bytes();
        assert!(initial > 0);
        // Overwrite a chunk with incompressible noise: bytes must grow.
        let noisy: Vec<Complex64> = (0..16)
            .map(|i| {
                let x = ((i * 2654435761usize) % 1000) as f64 / 1000.0;
                c64(x, 1.0 - x)
            })
            .collect();
        store.store_chunk(0, &noisy).unwrap();
        assert!(store.state_bytes() > initial);
        assert!(store.peak_state_bytes() >= store.state_bytes());
        let stats = store.cumulative_stats();
        assert_eq!(stats.blocks, 16 + 1);
    }

    #[test]
    fn wrong_length_buffers_are_typed_errors() {
        let store = CompressedTier::zero_state(8, 4, sz(1e-12));
        let mut long = vec![Complex64::ZERO; 32];
        assert_eq!(
            store.load_chunk(0, &mut long),
            Err(CodecError::BufferMismatch {
                expected: 16,
                got: 32
            })
        );
        assert_eq!(
            store.store_chunk(0, &long),
            Err(CodecError::BufferMismatch {
                expected: 16,
                got: 32
            })
        );
    }

    #[test]
    fn concurrent_chunk_access_is_safe() {
        let store = Arc::new(CompressedTier::zero_state(10, 5, sz(1e-12)));
        std::thread::scope(|s| {
            for t in 0..4usize {
                let store = store.clone();
                s.spawn(move || {
                    let mut buf = vec![Complex64::ZERO; 32];
                    for round in 0..16 {
                        let i = (t * 16 + round) % store.chunk_count();
                        store.load_chunk(i, &mut buf).unwrap();
                        buf[0] = c64(t as f64, round as f64);
                        store.store_chunk(i, &buf).unwrap();
                    }
                });
            }
        });
        // Still structurally sound.
        assert!(store.to_dense().is_ok());
    }

    #[test]
    fn lossless_codec_gives_exact_round_trip() {
        let spec = CodecSpec::Fpc;
        let amps: Vec<Complex64> = (0..256).map(|i| c64(i as f64, -(i as f64))).collect();
        let store = CompressedTier::from_amplitudes(&amps, 4, spec.build().into());
        let back = store.to_dense().unwrap();
        assert_eq!(amps, back);
    }

    #[test]
    fn renormalize_repairs_drift() {
        let amps: Vec<Complex64> = (0..64).map(|i| c64(0.2 * ((i % 5) as f64), 0.1)).collect();
        let store = CompressedTier::from_amplitudes(&amps, 3, sz(1e-12));
        let before = store.norm().unwrap();
        assert!(
            (before - 1.0).abs() > 0.1,
            "test state must be denormalized"
        );
        let reported = store.renormalize(1e-12).unwrap();
        assert!((reported - before).abs() < 1e-9);
        let after = store.norm().unwrap();
        assert!((after - 1.0).abs() < 1e-9, "norm after repair: {after}");
        // Within tolerance: no-op.
        let again = store.renormalize(1e-6).unwrap();
        assert!((again - 1.0).abs() < 1e-9);
    }

    #[test]
    fn payload_passthrough_round_trips() {
        let codec: Arc<dyn Codec> = Arc::from(CodecSpec::Fpc.build());
        let amps: Vec<Complex64> = (0..64).map(|i| c64(i as f64 * 0.5, -(i as f64))).collect();
        let store = CompressedTier::from_amplitudes(&amps, 3, codec.clone());
        let visits_before = store.counters().chunk_visits;
        let compressed_before = store.counters().bytes_compressed;

        // Loading a payload hands out exactly the codec bytes, counts a
        // visit, and charges no host decompression.
        let payload = store.load_chunk_payload(2).unwrap().unwrap();
        assert_eq!(payload, compress_complex(codec.as_ref(), &amps[16..24]));
        assert_eq!(store.counters().chunk_visits, visits_before + 1);
        assert_eq!(store.counters().bytes_decompressed, 0);

        // Storing an externally compressed payload commits it verbatim and
        // leaves bytes_compressed untouched (the codec ran elsewhere).
        let replacement: Vec<Complex64> = (0..8).map(|k| c64(0.25, k as f64)).collect();
        let new_payload = compress_complex(codec.as_ref(), &replacement);
        assert!(store.store_chunk_payload(5, new_payload).unwrap());
        assert_eq!(store.counters().bytes_compressed, compressed_before);
        let mut back = vec![Complex64::ZERO; 8];
        store.load_chunk(5, &mut back).unwrap();
        assert_eq!(back, replacement);
        assert!(store.state_bytes() > 0);
    }

    #[test]
    fn payload_load_checks_integrity() {
        let store = CompressedTier::zero_state(8, 4, sz(1e-12));
        store.debug_corrupt_chunk(1);
        assert!(matches!(
            store.load_chunk_payload(1),
            Err(CodecError::Corrupt(_))
        ));
        assert!(store.load_chunk_payload(0).unwrap().is_some());
    }

    #[test]
    fn swap_chunks_moves_payloads_without_codec_work() {
        let amps: Vec<Complex64> = (0..64).map(|i| c64(i as f64 * 0.5, -(i as f64))).collect();
        let store = CompressedTier::from_amplitudes(&amps, 3, sz(1e-12));
        let before = store.counters();
        let bytes_before = store.state_bytes();
        assert!(store.swap_chunks(1, 6).unwrap());
        assert!(store.swap_chunks(4, 4).unwrap(), "self-swap is a no-op");
        // No visits, no codec bytes, no resident-byte change.
        assert_eq!(store.counters(), before);
        assert_eq!(store.state_bytes(), bytes_before);
        // Contents exchanged exactly (checksums moved with the bytes).
        let mut buf = vec![Complex64::ZERO; 8];
        store.load_chunk(1, &mut buf).unwrap();
        for (a, b) in buf.iter().zip(&amps[48..56]) {
            assert!((a.re - b.re).abs() <= 1e-11);
        }
        store.load_chunk(6, &mut buf).unwrap();
        for (a, b) in buf.iter().zip(&amps[8..16]) {
            assert!((a.re - b.re).abs() <= 1e-11);
        }
    }

    #[test]
    fn adaptive_codec_picks_are_counted_from_payload_headers() {
        // Sparse chunks under the adaptive codec: every encode picks
        // zero-RLE, and with no error allowance nothing is lossy.
        let codec: Arc<dyn Codec> = Arc::from(CodecSpec::Auto { eb: None }.build());
        let store = CompressedTier::zero_state(8, 4, codec);
        let c = store.counters();
        assert_eq!(c.codec_picks_zero_rle, store.chunk_count() as u64);
        assert_eq!(c.codec_picks_fpc, 0);
        assert_eq!(c.lossy_encodes, 0);

        // With an allowance and adaptive precision, sparse chunks carrying
        // literal amplitudes demote to f32 pairs (halved literal bytes):
        // the pick is still zero-RLE, but mixed precision and lossy-encode
        // tick. (All-zero chunks tie at either width and stay f64.)
        let lossy: Arc<dyn Codec> = Arc::from(
            CodecSpec::Auto { eb: Some(1e-6) }
                .build_with_precision(mq_compress::Precision::Adaptive),
        );
        // Two adjacent nonzero amplitudes per 32-amp chunk: the chunk stays
        // sparse (60/64 zero f64s) and each plane carries an adjacent
        // literal pair that an f32 word stores in half the bytes.
        let mut amps = vec![Complex64::ZERO; 512];
        for i in 0..16 {
            amps[i * 32] = c64(0.5, -0.25);
            amps[i * 32 + 1] = c64(0.25, 0.125);
        }
        let store = CompressedTier::from_amplitudes(&amps, 5, lossy);
        let c = store.counters();
        assert_eq!(c.codec_picks_zero_rle, store.chunk_count() as u64);
        assert_eq!(c.mixed_precision_chunks, store.chunk_count() as u64);
        assert_eq!(c.lossy_encodes, store.chunk_count() as u64);

        // Static codecs report no payload metadata: all pick counters stay 0.
        let store = CompressedTier::zero_state(8, 4, Arc::new(ZeroRleCodec));
        let c = store.counters();
        assert_eq!(c.codec_picks_zero_rle, 0);
        assert_eq!(c.mixed_precision_chunks, 0);
    }

    #[test]
    fn corruption_is_detected_by_checksum() {
        let store = CompressedTier::zero_state(8, 4, sz(1e-12));
        store.debug_corrupt_chunk(3);
        let mut buf = vec![Complex64::ZERO; 16];
        assert!(matches!(
            store.load_chunk(3, &mut buf),
            Err(CodecError::Corrupt(_))
        ));
        store.load_chunk(0, &mut buf).unwrap();
    }
}
