//! The write-back residency-cache middleware: hot decompressed chunks in
//! front of any inner [`ChunkStore`].

use super::{expect_chunk_len, fingerprint_amps, ChunkStore, StoreCounters};
use mq_compress::{CodecError, CompressionStats};
use mq_num::Complex64;
use mq_telemetry::Telemetry;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// When cached stores reach the inner store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// Stores dirty the resident copy; the inner store sees the data on
    /// eviction or [`flush`](ChunkStore::flush) (the default).
    #[default]
    WriteBack,
    /// Stores keep the resident copy *and* write through to the inner
    /// store immediately, so the inner representation is never stale.
    WriteThrough,
}

/// One decompressed chunk resident in the cache.
struct CacheEntry {
    amps: Vec<Complex64>,
    /// True when the resident copy is newer than the inner store's.
    dirty: bool,
    /// Monotonic generation stamp; write-backs commit only if it still
    /// matches their snapshot, so a concurrent store supersedes them.
    gen: u64,
    /// Content fingerprint of `amps` — stores of identical content skip
    /// the write entirely (and don't re-dirty a clean entry).
    fingerprint: u64,
    /// Recency clock value of the last touch (drives victim selection).
    tick: u64,
}

struct CacheState {
    map: HashMap<usize, CacheEntry>,
    tick: u64,
    gen: u64,
}

/// Bounded write-back cache of decompressed chunks over any inner store.
///
/// Loads of resident chunks skip the inner store (checksum and codec)
/// entirely; stores replace the resident copy and mark it dirty
/// ([`CachePolicy::WriteBack`]) — the inner store sees the data only on
/// eviction or [`flush`](ChunkStore::flush), and clean evictions drop the
/// buffer with zero inner traffic. A content fingerprint (FNV-1a over the
/// amplitude bits) short-circuits stores of unmodified chunks.
///
/// Eviction is *scan-resistant*: entries carry a recency clock, but on
/// overflow the **most** recently touched entry is evicted — the engines
/// sweep every chunk once per stage, and classic LRU degrades to zero hits
/// on cyclic sweeps that exceed capacity (each entry is evicted moments
/// before its next use). Evicting the freshest entry sacrifices a chunk
/// already visited this sweep and protects the unharvested tail: the
/// textbook scan-resistant choice, within one entry of Belady-optimal for
/// cyclic access.
///
/// Cache bytes count toward
/// [`peak_resident_bytes`](ChunkStore::peak_resident_bytes) so the
/// memory-efficiency claim stays truthful.
///
/// Lock order: the cache mutex may be held while the inner store takes its
/// chunk-slot locks (write-backs and evictions commit to the inner store
/// under the cache lock, which is what makes the gen-checked write-back
/// race free), but **never** the reverse — the load path calls into the
/// inner store with the cache lock released.
pub struct ResidencyCache {
    inner: Arc<dyn ChunkStore>,
    /// Capacity in entries (`cache_bytes / decompressed chunk size`);
    /// 0 = passthrough.
    capacity: usize,
    policy: CachePolicy,
    entry_bytes: usize,
    state: Mutex<CacheState>,
    /// Per-chunk write versions, bumped (under the cache lock) whenever
    /// this middleware commits new content to the inner store; the load
    /// path uses them to avoid admitting a stale decode after a concurrent
    /// write-back.
    versions: Vec<AtomicU64>,
    cache_bytes_now: AtomicUsize,
    peak_cache_bytes: AtomicUsize,
    /// Peak of inner state bytes + cache bytes observed at any instant.
    peak_resident: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    skipped: AtomicU64,
    evictions: AtomicU64,
}

impl ResidencyCache {
    /// Wraps `inner` with up to `cache_bytes` of decompressed resident
    /// chunks (rounded down to whole chunks; budgets below one chunk make
    /// the cache a passthrough).
    pub fn new(inner: Arc<dyn ChunkStore>, cache_bytes: usize, policy: CachePolicy) -> Self {
        let entry_bytes = inner.chunk_amps() * 16;
        let capacity = cache_bytes / entry_bytes;
        let chunk_count = inner.chunk_count();
        ResidencyCache {
            inner,
            capacity,
            policy,
            entry_bytes,
            state: Mutex::new(CacheState {
                map: HashMap::new(),
                tick: 0,
                gen: 0,
            }),
            versions: (0..chunk_count).map(|_| AtomicU64::new(0)).collect(),
            cache_bytes_now: AtomicUsize::new(0),
            peak_cache_bytes: AtomicUsize::new(0),
            peak_resident: AtomicUsize::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The wrapped inner store.
    pub fn inner(&self) -> &Arc<dyn ChunkStore> {
        &self.inner
    }

    /// Decompressed bytes currently held resident.
    pub fn cache_resident_bytes(&self) -> usize {
        self.cache_bytes_now.load(Ordering::Relaxed)
    }

    /// Peak decompressed bytes ever held resident.
    pub fn peak_cache_bytes(&self) -> usize {
        self.peak_cache_bytes.load(Ordering::Relaxed)
    }

    /// Evicts everything (write-backs included), leaving the cache empty
    /// and the inner store current — a full spill.
    pub fn drain(&self) -> Result<(), CodecError> {
        loop {
            let victim = {
                let cache = self.state.lock();
                cache.map.iter().next().map(|(&i, e)| (i, e.gen))
            };
            match victim {
                None => return Ok(()),
                Some((i, gen)) => {
                    if self.evict_candidate(i, gen)? {
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }

    fn note_resident(&self) {
        let resident = self.inner.state_bytes() + self.cache_bytes_now.load(Ordering::Relaxed);
        self.peak_resident.fetch_max(resident, Ordering::Relaxed);
    }

    /// Writes a dirty resident copy through to the inner store if
    /// generation `gen` still owns the entry; a concurrent store supersedes
    /// us. The gen check and the inner commit happen atomically under the
    /// cache lock, so a racing newer write-back can never be overwritten by
    /// an older one.
    fn writeback(&self, i: usize, amps: &[Complex64], gen: u64) -> Result<(), CodecError> {
        let mut cache = self.state.lock();
        if let Some(e) = cache.map.get_mut(&i) {
            if e.gen == gen {
                self.inner.store_chunk(i, amps)?;
                self.versions[i].fetch_add(1, Ordering::Release);
                e.dirty = false;
            }
        }
        drop(cache);
        self.note_resident();
        Ok(())
    }

    /// Completes the eviction of a snapshot victim: dirty copies are
    /// committed to the inner store, clean ones dropped with zero inner
    /// traffic. Returns whether the entry was actually removed.
    fn evict_candidate(&self, i: usize, gen: u64) -> Result<bool, CodecError> {
        let mut cache = self.state.lock();
        let dirty_amps = match cache.map.get(&i) {
            Some(e) if e.gen == gen => e.dirty.then(|| e.amps.clone()),
            _ => return Ok(false),
        };
        if let Some(amps) = dirty_amps {
            self.inner.store_chunk(i, &amps)?;
            self.versions[i].fetch_add(1, Ordering::Release);
        }
        cache.map.remove(&i);
        // Byte accounting happens under the cache lock (derived from the
        // map size) so a concurrent insert can never observe a transient
        // sum above the real occupancy.
        self.cache_bytes_now
            .store(cache.map.len() * self.entry_bytes, Ordering::Relaxed);
        drop(cache);
        self.note_resident();
        Ok(true)
    }

    /// Evicts entries until there is room for one more (see the type docs
    /// for why the victim is the *most* recently touched entry).
    fn make_room(&self) -> Result<(), CodecError> {
        loop {
            let victim = {
                let cache = self.state.lock();
                if cache.map.len() < self.capacity {
                    return Ok(());
                }
                cache
                    .map
                    .iter()
                    .max_by_key(|(_, e)| e.tick)
                    .map(|(&i, e)| (i, e.gen))
            };
            match victim {
                Some((i, gen)) => {
                    if self.evict_candidate(i, gen)? {
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                None => return Ok(()),
            }
        }
    }

    /// Admits a freshly decoded chunk as a clean entry, unless the inner
    /// slot changed since the decode or the chunk raced in some other way.
    fn admit_clean(&self, i: usize, amps: &[Complex64], version: u64) -> Result<(), CodecError> {
        self.make_room()?;
        let fp = fingerprint_amps(amps);
        let mut inserted = false;
        {
            let mut cache = self.state.lock();
            if cache.map.len() < self.capacity
                && !cache.map.contains_key(&i)
                && self.versions[i].load(Ordering::Acquire) == version
            {
                cache.tick += 1;
                cache.gen += 1;
                let (tick, gen) = (cache.tick, cache.gen);
                cache.map.insert(
                    i,
                    CacheEntry {
                        amps: amps.to_vec(),
                        dirty: false,
                        gen,
                        fingerprint: fp,
                        tick,
                    },
                );
                inserted = true;
                let cur = cache.map.len() * self.entry_bytes;
                self.cache_bytes_now.store(cur, Ordering::Relaxed);
                self.peak_cache_bytes.fetch_max(cur, Ordering::Relaxed);
            }
        }
        if inserted {
            self.note_resident();
        }
        Ok(())
    }
}

impl ChunkStore for ResidencyCache {
    fn kind(&self) -> &'static str {
        self.inner.kind()
    }

    fn n_qubits(&self) -> u32 {
        self.inner.n_qubits()
    }

    fn chunk_bits(&self) -> u32 {
        self.inner.chunk_bits()
    }

    /// Serves resident chunks straight from the decompressed copy — no
    /// checksum, no codec. Misses fall through to the inner store and the
    /// decode is admitted as a clean entry.
    fn load_chunk(&self, i: usize, out: &mut [Complex64]) -> Result<(), CodecError> {
        expect_chunk_len(self.chunk_amps(), out.len())?;
        if self.capacity == 0 {
            return self.inner.load_chunk(i, out);
        }
        {
            let mut cache = self.state.lock();
            cache.tick += 1;
            let tick = cache.tick;
            if let Some(e) = cache.map.get_mut(&i) {
                e.tick = tick;
                out.copy_from_slice(&e.amps);
                drop(cache);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
        }
        let version = self.versions[i].load(Ordering::Acquire);
        self.inner.load_chunk(i, out)?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.admit_clean(i, out, version)
    }

    /// Replaces the resident copy and marks it dirty (write-back) — the
    /// inner store sees the data on eviction or flush — unless the content
    /// fingerprint matches, which skips the store entirely.
    fn store_chunk(&self, i: usize, amps: &[Complex64]) -> Result<(), CodecError> {
        expect_chunk_len(self.chunk_amps(), amps.len())?;
        if self.capacity == 0 {
            return self.inner.store_chunk(i, amps);
        }
        let fp = fingerprint_amps(amps);
        let (skipped, gen) = loop {
            // None = no room yet; Some((skipped, gen)) = entry updated.
            let mut outcome = None;
            let mut inserted = false;
            {
                let mut cache = self.state.lock();
                cache.tick += 1;
                cache.gen += 1;
                let (tick, gen) = (cache.tick, cache.gen);
                if let Some(e) = cache.map.get_mut(&i) {
                    e.tick = tick;
                    if e.fingerprint == fp {
                        outcome = Some((true, e.gen));
                    } else {
                        e.amps.copy_from_slice(amps);
                        e.fingerprint = fp;
                        e.dirty = true;
                        e.gen = gen;
                        outcome = Some((false, gen));
                    }
                } else if cache.map.len() < self.capacity {
                    cache.map.insert(
                        i,
                        CacheEntry {
                            amps: amps.to_vec(),
                            dirty: true,
                            gen,
                            fingerprint: fp,
                            tick,
                        },
                    );
                    outcome = Some((false, gen));
                    inserted = true;
                    let cur = cache.map.len() * self.entry_bytes;
                    self.cache_bytes_now.store(cur, Ordering::Relaxed);
                    self.peak_cache_bytes.fetch_max(cur, Ordering::Relaxed);
                }
            }
            if inserted {
                self.note_resident();
            }
            match outcome {
                Some(o) => break o,
                None => self.make_room()?,
            }
        };
        if skipped {
            self.skipped.fetch_add(1, Ordering::Relaxed);
        } else if self.policy == CachePolicy::WriteThrough {
            self.writeback(i, amps, gen)?;
        }
        Ok(())
    }

    /// Serves a codec payload *through* the cache: a dirty resident copy is
    /// written back first (encode-through), so the inner store's bytes are
    /// never stale when they ship. Served payloads count as cache hits when
    /// the chunk was resident (the resident copy vouched for freshness) and
    /// misses otherwise, preserving `hits + misses == chunk_visits`; an
    /// inner refusal counts nothing — the caller falls back to
    /// [`load_chunk`](ChunkStore::load_chunk), which does its own counting.
    fn load_chunk_payload(&self, i: usize) -> Result<Option<Vec<u8>>, CodecError> {
        if self.capacity == 0 {
            return self.inner.load_chunk_payload(i);
        }
        let mut was_resident = false;
        let dirty = {
            let mut cache = self.state.lock();
            cache.tick += 1;
            let tick = cache.tick;
            match cache.map.get_mut(&i) {
                Some(e) => {
                    e.tick = tick;
                    was_resident = true;
                    e.dirty.then(|| (e.amps.clone(), e.gen))
                }
                None => None,
            }
        };
        if let Some((amps, gen)) = dirty {
            self.writeback(i, &amps, gen)?;
        }
        let payload = self.inner.load_chunk_payload(i)?;
        if payload.is_some() {
            if was_resident {
                self.hits.fetch_add(1, Ordering::Relaxed);
            } else {
                self.misses.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(payload)
    }

    /// Commits a codec payload through to the inner store and, on
    /// acceptance, invalidates any resident copy (its decompressed bytes
    /// are stale the moment the payload lands) and bumps the chunk's write
    /// version so a racing decode cannot re-admit the old content. Counts
    /// nothing: the matching [`load_chunk_payload`] already booked this
    /// chunk's visit. An inner refusal leaves the cache untouched.
    ///
    /// [`load_chunk_payload`]: ChunkStore::load_chunk_payload
    fn store_chunk_payload(&self, i: usize, payload: Vec<u8>) -> Result<bool, CodecError> {
        if self.capacity == 0 {
            return self.inner.store_chunk_payload(i, payload);
        }
        let accepted = {
            // Commit under the cache lock (lock order allows cache → inner)
            // so the version bump, the inner write and the invalidation are
            // one atomic step from any concurrent load's point of view.
            let mut cache = self.state.lock();
            let accepted = self.inner.store_chunk_payload(i, payload)?;
            if accepted {
                self.versions[i].fetch_add(1, Ordering::Release);
                if cache.map.remove(&i).is_some() {
                    self.cache_bytes_now
                        .store(cache.map.len() * self.entry_bytes, Ordering::Relaxed);
                }
            }
            accepted
        };
        if accepted {
            self.note_resident();
        }
        Ok(accepted)
    }

    /// Forwards a payload-level chunk exchange to the inner store after
    /// making the inner bytes authoritative: dirty resident copies of
    /// either chunk are written back first, then both residents are
    /// invalidated (their decompressed bytes describe the pre-swap
    /// contents) with their write versions bumped so racing decodes cannot
    /// re-admit stale data. Counts nothing — the exchange itself is free.
    fn swap_chunks(&self, i: usize, j: usize) -> Result<bool, CodecError> {
        if self.capacity == 0 {
            return self.inner.swap_chunks(i, j);
        }
        // One atomic step under the cache lock (lock order cache → inner).
        let mut cache = self.state.lock();
        for k in [i, j] {
            if let Some(e) = cache.map.get(&k) {
                if e.dirty {
                    self.inner.store_chunk(k, &e.amps)?;
                }
            }
            if cache.map.remove(&k).is_some() {
                self.versions[k].fetch_add(1, Ordering::Release);
            }
        }
        self.cache_bytes_now
            .store(cache.map.len() * self.entry_bytes, Ordering::Relaxed);
        let swapped = self.inner.swap_chunks(i, j)?;
        if swapped && i != j {
            for k in [i, j] {
                self.versions[k].fetch_add(1, Ordering::Release);
            }
        }
        Ok(swapped)
    }

    /// Writes every dirty resident chunk back to the inner store (entries
    /// stay resident, now clean), then flushes the inner store.
    fn flush(&self) -> Result<(), CodecError> {
        let dirty: Vec<(usize, Vec<Complex64>, u64)> = {
            let cache = self.state.lock();
            cache
                .map
                .iter()
                .filter(|(_, e)| e.dirty)
                .map(|(&i, e)| (i, e.amps.clone(), e.gen))
                .collect()
        };
        for (i, amps, gen) in dirty {
            self.writeback(i, &amps, gen)?;
        }
        self.inner.flush()
    }

    fn state_bytes(&self) -> usize {
        self.inner.state_bytes()
    }

    fn peak_state_bytes(&self) -> usize {
        self.inner.peak_state_bytes()
    }

    fn peak_resident_bytes(&self) -> usize {
        self.peak_resident
            .load(Ordering::Relaxed)
            .max(self.inner.peak_resident_bytes())
    }

    fn counters(&self) -> StoreCounters {
        let inner = self.inner.counters();
        if self.capacity == 0 {
            return inner;
        }
        let hits = self.hits.load(Ordering::Relaxed);
        let misses = self.misses.load(Ordering::Relaxed);
        StoreCounters {
            // The inner store only sees misses; visits at this tier are
            // the caller-observed total.
            chunk_visits: hits + misses,
            cache_hits: hits,
            cache_misses: misses,
            recompress_skipped: self.skipped.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            ..inner
        }
    }

    fn cumulative_stats(&self) -> CompressionStats {
        self.inner.cumulative_stats()
    }

    fn resident_chunks(&self) -> Vec<usize> {
        self.state.lock().map.keys().copied().collect()
    }

    fn attach_telemetry(&self, telemetry: Telemetry) {
        self.inner.attach_telemetry(telemetry);
    }

    fn detach_telemetry(&self) {
        self.inner.detach_telemetry();
    }

    fn set_error_allowance(&self, eb: Option<f64>) {
        self.inner.set_error_allowance(eb);
    }

    fn debug_corrupt_chunk(&self, i: usize) {
        self.inner.debug_corrupt_chunk(i);
    }
}

impl std::fmt::Debug for ResidencyCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResidencyCache")
            .field("inner", &self.inner.kind())
            .field("capacity_chunks", &self.capacity)
            .field("policy", &self.policy)
            .field("cache_resident_bytes", &self.cache_resident_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::super::CompressedTier;
    use super::*;
    use mq_compress::SzCodec;
    use mq_num::complex::c64;

    /// A store with every chunk already written once (8 qubits, 16 chunks
    /// of 16 amps), cache configured for `entries` resident chunks.
    fn cached_store(entries: usize) -> (Arc<dyn ChunkStore>, ResidencyCache) {
        let inner: Arc<dyn ChunkStore> = Arc::new(CompressedTier::zero_state(
            8,
            4,
            Arc::new(SzCodec::new(1e-12)),
        ));
        let cache = ResidencyCache::new(
            inner.clone(),
            entries * inner.chunk_amps() * 16,
            CachePolicy::WriteBack,
        );
        (inner, cache)
    }

    #[test]
    fn cache_hits_skip_the_codec() {
        let (_, store) = cached_store(4);
        let mut buf = vec![Complex64::ZERO; 16];
        store.load_chunk(0, &mut buf).unwrap(); // miss: decodes + admits
        let decoded = store.counters().bytes_decompressed;
        assert!(decoded > 0);
        assert_eq!(store.counters().cache_misses, 1);
        store.load_chunk(0, &mut buf).unwrap(); // hit: no codec traffic
        let c = store.counters();
        assert_eq!(c.bytes_decompressed, decoded);
        assert_eq!(c.cache_hits, 1);
        assert_eq!(c.chunk_visits, 2);
        assert_eq!(c.cache_hits + c.cache_misses, c.chunk_visits);
    }

    #[test]
    fn dirty_store_defers_recompression_until_flush() {
        let (inner, store) = cached_store(4);
        let compressed_0 = store.counters().bytes_compressed;
        let buf: Vec<Complex64> = (0..16).map(|k| c64(0.1 * k as f64, 0.0)).collect();
        store.store_chunk(2, &buf).unwrap();
        assert_eq!(
            store.counters().bytes_compressed,
            compressed_0,
            "write-back must not touch the codec"
        );
        // The dirty resident copy is what loads see.
        let mut back = vec![Complex64::ZERO; 16];
        store.load_chunk(2, &mut back).unwrap();
        assert_eq!(back, buf);
        store.flush().unwrap();
        assert!(store.counters().bytes_compressed > compressed_0);
        // Flushed entries stay resident (clean): another flush is free.
        let after = store.counters().bytes_compressed;
        store.flush().unwrap();
        assert_eq!(store.counters().bytes_compressed, after);
        // And the inner store now round-trips the data.
        inner.load_chunk(2, &mut back).unwrap();
        for (a, b) in back.iter().zip(&buf) {
            assert!((a.re - b.re).abs() <= 1e-9);
        }
    }

    #[test]
    fn fingerprint_skips_recompression_of_unmodified_chunks() {
        let (_, store) = cached_store(4);
        let baseline = store.counters().bytes_compressed;
        let mut buf = vec![Complex64::ZERO; 16];
        store.load_chunk(5, &mut buf).unwrap(); // admit clean
        store.store_chunk(5, &buf).unwrap(); // identical content
        assert_eq!(store.counters().recompress_skipped, 1);
        store.flush().unwrap();
        assert_eq!(
            store.counters().bytes_compressed,
            baseline,
            "unmodified store must not dirty the entry"
        );
    }

    #[test]
    fn overflow_eviction_writes_back_dirty_chunks() {
        let (_, store) = cached_store(2);
        let baseline = store.counters().bytes_compressed;
        let mk = |seed: usize| -> Vec<Complex64> {
            (0..16)
                .map(|k| c64((seed * 16 + k) as f64 * 0.01, 0.0))
                .collect()
        };
        // Three dirty stores through a 2-entry cache: one must be evicted
        // (the freshest at overflow time — scan-resistant victim choice).
        store.store_chunk(0, &mk(0)).unwrap();
        store.store_chunk(1, &mk(1)).unwrap();
        store.store_chunk(2, &mk(2)).unwrap();
        assert!(store.counters().evictions >= 1);
        assert!(
            store.counters().bytes_compressed > baseline,
            "dirty eviction must recompress"
        );
        assert!(store.cache_resident_bytes() <= 2 * store.chunk_amps() * 16);
        // All three chunks readable and correct, evicted or resident alike.
        for seed in 0..3usize {
            let mut back = vec![Complex64::ZERO; 16];
            store.load_chunk(seed, &mut back).unwrap();
            for (a, b) in back.iter().zip(&mk(seed)) {
                assert!((a.re - b.re).abs() <= 1e-9, "chunk {seed}");
            }
        }
    }

    #[test]
    fn clean_eviction_is_codec_free() {
        let (_, store) = cached_store(1);
        let mut buf = vec![Complex64::ZERO; 16];
        store.load_chunk(0, &mut buf).unwrap(); // admit clean
        let compressed = store.counters().bytes_compressed;
        store.load_chunk(1, &mut buf).unwrap(); // evicts clean chunk 0
        assert!(store.counters().evictions >= 1);
        assert_eq!(
            store.counters().bytes_compressed,
            compressed,
            "clean eviction must not recompress"
        );
    }

    #[test]
    fn write_through_policy_keeps_inner_current() {
        let inner: Arc<dyn ChunkStore> = Arc::new(CompressedTier::zero_state(
            8,
            4,
            Arc::new(SzCodec::new(1e-12)),
        ));
        let store = ResidencyCache::new(inner.clone(), 4 * 16 * 16, CachePolicy::WriteThrough);
        let baseline = store.counters().bytes_compressed;
        let buf: Vec<Complex64> = (0..16).map(|k| c64(0.05 * k as f64, 0.0)).collect();
        store.store_chunk(3, &buf).unwrap();
        assert!(
            store.counters().bytes_compressed > baseline,
            "write-through compresses immediately"
        );
        // The inner store is current without any flush.
        let mut back = vec![Complex64::ZERO; 16];
        inner.load_chunk(3, &mut back).unwrap();
        for (a, b) in back.iter().zip(&buf) {
            assert!((a.re - b.re).abs() <= 1e-9);
        }
    }

    #[test]
    fn cache_budget_bounds_resident_bytes() {
        let (_, store) = cached_store(3);
        let budget = 3 * store.chunk_amps() * 16;
        let buf: Vec<Complex64> = (0..16).map(|k| c64(0.01 * k as f64, 0.0)).collect();
        for round in 0..4 {
            for i in 0..store.chunk_count() {
                let mut b = buf.clone();
                b[0] = c64(round as f64, i as f64);
                store.store_chunk(i, &b).unwrap();
                assert!(
                    store.cache_resident_bytes() <= budget,
                    "cache overran its budget"
                );
            }
        }
        assert!(store.peak_cache_bytes() <= budget);
        assert!(store.peak_resident_bytes() >= store.peak_state_bytes());
    }

    #[test]
    fn cached_hit_bypasses_corruption_check_until_eviction() {
        let (inner, store) = cached_store(2);
        let mut buf = vec![Complex64::ZERO; 16];
        store.load_chunk(7, &mut buf).unwrap(); // resident, clean
        store.debug_corrupt_chunk(7);
        // Resident: served from the (uncorrupted) decompressed copy.
        assert!(store.load_chunk(7, &mut buf).is_ok());
        // Non-resident chunk with corruption still surfaces the error.
        store.debug_corrupt_chunk(9);
        assert!(matches!(
            store.load_chunk(9, &mut buf),
            Err(CodecError::Corrupt(_))
        ));
        // Once chunk 7 leaves the cache (clean eviction — no write-back),
        // the corrupted inner slot is exposed again.
        store.drain().unwrap();
        assert!(matches!(
            inner.load_chunk(7, &mut buf),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn concurrent_cached_access_is_safe_and_coherent() {
        let inner: Arc<dyn ChunkStore> = Arc::new(CompressedTier::zero_state(
            10,
            5,
            Arc::new(SzCodec::new(1e-12)),
        ));
        // Tiny cache: constant eviction churn under contention.
        let store = Arc::new(ResidencyCache::new(
            inner,
            3 * 32 * 16,
            CachePolicy::WriteBack,
        ));
        std::thread::scope(|s| {
            for t in 0..4usize {
                let store = store.clone();
                s.spawn(move || {
                    let mut buf = vec![Complex64::ZERO; 32];
                    for round in 0..32 {
                        let i = (t * 16 + round) % store.chunk_count();
                        store.load_chunk(i, &mut buf).unwrap();
                        buf[0] = c64(t as f64, round as f64);
                        store.store_chunk(i, &buf).unwrap();
                    }
                });
            }
        });
        store.flush().unwrap();
        assert!(store.to_dense().is_ok());
        let budget = 3 * store.chunk_amps() * 16;
        assert!(store.peak_cache_bytes() <= budget);
    }

    #[test]
    fn drain_spills_and_preserves_data() {
        let (inner, store) = cached_store(4);
        let buf: Vec<Complex64> = (0..16).map(|k| c64(0.02 * k as f64, 0.01)).collect();
        store.store_chunk(1, &buf).unwrap(); // dirty resident
        store.drain().unwrap();
        assert!(store.resident_chunks().is_empty());
        let mut back = vec![Complex64::ZERO; 16];
        inner.load_chunk(1, &mut back).unwrap();
        for (a, b) in back.iter().zip(&buf) {
            assert!((a.re - b.re).abs() <= 1e-9);
        }
    }

    #[test]
    fn payload_load_writes_back_dirty_resident_copy() {
        let (inner, store) = cached_store(4);
        let buf: Vec<Complex64> = (0..16).map(|k| c64(0.03 * k as f64, 0.0)).collect();
        store.store_chunk(2, &buf).unwrap(); // dirty resident, no codec yet
        let compressed_0 = store.counters().bytes_compressed;
        let payload = store.load_chunk_payload(2).unwrap();
        assert!(payload.is_some(), "active cache must serve payloads now");
        assert!(
            store.counters().bytes_compressed > compressed_0,
            "dirty resident must be written back before its payload ships"
        );
        // The shipped payload reflects the resident content, not the stale
        // inner zero state.
        let mut back = vec![Complex64::ZERO; 16];
        inner.load_chunk(2, &mut back).unwrap();
        for (a, b) in back.iter().zip(&buf) {
            assert!((a.re - b.re).abs() <= 1e-9);
        }
        // Resident chunk: the payload load books a cache hit, keeping the
        // visit identity intact.
        let c = store.counters();
        assert_eq!(c.cache_hits, 1);
        assert_eq!(c.cache_hits + c.cache_misses, c.chunk_visits);
    }

    #[test]
    fn payload_store_invalidates_resident_copy() {
        let (inner, store) = cached_store(4);
        let mut buf = vec![Complex64::ZERO; 16];
        store.load_chunk(3, &mut buf).unwrap(); // clean resident
        assert!(store.resident_chunks().contains(&3));
        // Forge new content for chunk 3 by encoding it through the inner
        // tier at another index.
        let fresh: Vec<Complex64> = (0..16).map(|k| c64(0.07 * k as f64, 0.02)).collect();
        inner.store_chunk(9, &fresh).unwrap();
        let payload = inner.load_chunk_payload(9).unwrap().unwrap();
        assert!(store.store_chunk_payload(3, payload).unwrap());
        assert!(
            !store.resident_chunks().contains(&3),
            "accepted payload must invalidate the stale resident copy"
        );
        // The next load sees the committed payload, not the old zeros.
        store.load_chunk(3, &mut buf).unwrap();
        for (a, b) in buf.iter().zip(&fresh) {
            assert!((a.re - b.re).abs() <= 1e-9);
        }
    }

    #[test]
    fn payload_round_trip_through_active_cache_counts_once() {
        let (_, store) = cached_store(4);
        // Miss path: not resident, payload served straight from the inner
        // tier — one visit, counted as a miss.
        let p = store.load_chunk_payload(5).unwrap().unwrap();
        let c = store.counters();
        assert_eq!(c.cache_misses, 1);
        assert_eq!(c.cache_hits, 0);
        assert_eq!(c.chunk_visits, 1);
        // Commit path books nothing: the pair is one visit total.
        assert!(store.store_chunk_payload(5, p).unwrap());
        let c = store.counters();
        assert_eq!(c.cache_hits + c.cache_misses, c.chunk_visits);
        assert_eq!(c.chunk_visits, 1);
    }

    #[test]
    fn swap_chunks_flushes_dirty_residents_and_invalidates_both() {
        let (inner, store) = cached_store(4);
        let buf: Vec<Complex64> = (0..16).map(|k| c64(0.04 * k as f64, 0.0)).collect();
        store.store_chunk(1, &buf).unwrap(); // dirty resident
        let mut scratch = vec![Complex64::ZERO; 16];
        store.load_chunk(6, &mut scratch).unwrap(); // clean resident
        let visits_before = store.counters().chunk_visits;
        assert!(store.swap_chunks(1, 6).unwrap());
        // Both residents invalidated, no visit counted for the swap.
        assert!(!store.resident_chunks().contains(&1));
        assert!(!store.resident_chunks().contains(&6));
        assert_eq!(store.counters().chunk_visits, visits_before);
        let c = store.counters();
        assert_eq!(c.cache_hits + c.cache_misses, c.chunk_visits);
        // The dirty content crossed to chunk 6 through the swap.
        inner.load_chunk(6, &mut scratch).unwrap();
        for (a, b) in scratch.iter().zip(&buf) {
            assert!((a.re - b.re).abs() <= 1e-9);
        }
        // And loads through the cache observe the swapped state, not the
        // stale resident copies.
        store.load_chunk(1, &mut scratch).unwrap();
        assert!(scratch.iter().all(|z| z.norm() < 1e-9));
    }

    #[test]
    fn sub_chunk_budget_is_a_passthrough() {
        let inner: Arc<dyn ChunkStore> = Arc::new(CompressedTier::zero_state(
            8,
            4,
            Arc::new(SzCodec::new(1e-12)),
        ));
        let store = ResidencyCache::new(inner, 8, CachePolicy::WriteBack);
        let mut buf = vec![Complex64::ZERO; 16];
        store.load_chunk(0, &mut buf).unwrap();
        assert!(store.resident_chunks().is_empty());
        assert_eq!(store.counters().cache_hits, 0);
        assert_eq!(store.counters().cache_misses, 0);
    }
}
