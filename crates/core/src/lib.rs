//! # memqsim-core — the MEMQSIM system
//!
//! The paper's primary contribution: highly memory-efficient, modular
//! state-vector simulation via chunked, compressed state storage with a
//! pipelined CPU/GPU execution engine.
//!
//! Architecture (paper Fig. 1 + Fig. 2):
//!
//! * [`store`] — the state vector lives as independently stored chunks
//!   behind the [`store::ChunkStore`] trait: a compressed base tier
//!   ([`store::CompressedTier`], the paper's offline stage), an
//!   uncompressed baseline ([`store::DenseStore`]), a disk-spill tier
//!   ([`store::SpillStore`]), plus residency-cache and telemetry
//!   middleware ([`store::ResidencyCache`], [`store::TelemetryTier`]).
//! * [`planner`] + `mq_circuit::partition` — the offline circuit
//!   partitioner: stages with bounded cross-chunk working sets, chunk
//!   groups per stage.
//! * [`specialize`] — rewrites each circuit gate for a chunk-group buffer
//!   (remapped local/high qubits; outside qubits collapse to control
//!   decisions or global scalars).
//! * [`engine::cpu`] — compressed execution on CPU "idle cores";
//!   [`engine::hybrid`] — the full six-step pipeline against the simulated
//!   device; per-gate granularity baseline for the Wu et al. ablation.
//! * [`backend`] — the modular seam: dense / compressed / hybrid backends
//!   behind one trait (Fig. 1's "independent of algorithm and backend").
//! * [`measure`] — sampling directly from the compressed store;
//!   [`fidelity`] — lossy-error accounting against the dense oracle.
//!
//! ## Quick start
//!
//! ```
//! use memqsim_core::{MemQSim, MemQSimConfig};
//! use mq_circuit::library;
//!
//! let sim = MemQSim::new(MemQSimConfig {
//!     chunk_bits: 4,
//!     ..Default::default()
//! });
//! let outcome = sim.simulate(&library::ghz(8)).unwrap();
//! assert!(outcome.probability(0) > 0.49);
//! assert!(outcome.compression_ratio > 1.0);
//! ```

pub mod backend;
pub mod config;
pub mod engine;
pub mod fidelity;
pub mod measure;
pub mod planner;
pub mod specialize;
pub mod store;
#[cfg(test)]
mod testkit;

pub use backend::{
    run_on_all, Backend, BackendRun, CompressedCpuBackend, DenseCpuBackend, HybridBackend,
};
pub use config::{
    BudgetPolicy, FusionLevel, LayoutPolicy, MemQSimConfig, MemQSimConfigBuilder, ShardPolicy,
    StoreKind, TransferMode, WorkerSplit,
};
pub use engine::{
    run_with_executor, ChunkExecutor, EngineError, ExecContext, ExecutorStats, Granularity,
    GroupWork, RunReport, SerialAdapter, StageBatchExecutor, StageWork,
};
pub use mq_compress::Precision;
pub use mq_telemetry::{Counter, DeviceLane, Role, RunTelemetry, SpanRecord, Telemetry};
pub use store::{
    build_store, build_store_from_amplitudes, CachePolicy, ChunkStore, CompressedTier, DenseStore,
    ResidencyCache, SpillStore, StoreCounters, TelemetryTier,
};

use mq_circuit::Circuit;
use mq_num::Complex64;
use std::sync::Arc;

/// High-level facade: one object, one call, a simulated circuit.
#[derive(Debug, Clone)]
pub struct MemQSim {
    cfg: MemQSimConfig,
}

/// Outcome of a [`MemQSim::simulate`] call.
pub struct SimOutcome {
    /// The final state, still chunked in its store stack; query it
    /// directly through the [`ChunkStore`] trait.
    pub store: Arc<dyn ChunkStore>,
    /// Engine report.
    pub report: RunReport,
    /// Dense-equivalent bytes / resident compressed bytes at the end.
    pub compression_ratio: f64,
}

impl SimOutcome {
    /// Born probability of a basis state (decompresses one chunk).
    pub fn probability(&self, basis: usize) -> f64 {
        self.store.probability(basis).expect("store is readable")
    }

    /// Decompresses the full state (exponential memory).
    pub fn to_dense(&self) -> Vec<Complex64> {
        self.store.to_dense().expect("store is readable")
    }
}

impl MemQSim {
    /// Creates a simulator with the given configuration.
    pub fn new(cfg: MemQSimConfig) -> MemQSim {
        MemQSim { cfg }
    }

    /// The active configuration.
    pub fn config(&self) -> &MemQSimConfig {
        &self.cfg
    }

    /// Simulates `circuit` from `|0...0>` on the compressed CPU engine.
    pub fn simulate(&self, circuit: &Circuit) -> Result<SimOutcome, EngineError> {
        let store = build_store(circuit.n_qubits(), &self.cfg)?;
        let report = engine::cpu::run(&store, circuit, &self.cfg, Granularity::Staged)?;
        let compression_ratio = store.current_ratio();
        Ok(SimOutcome {
            store,
            report,
            compression_ratio,
        })
    }

    /// Simulates `circuit` through the full hybrid CPU/device pipeline on a
    /// freshly created simulated device fleet (`cfg.devices` homogeneous
    /// copies of `device_spec`; 1 by default). Returns the final chunked
    /// state and the pipeline report (device modeled clocks, per-phase
    /// timing, per-device lanes).
    pub fn simulate_hybrid(
        &self,
        circuit: &Circuit,
        device_spec: mq_device::DeviceSpec,
    ) -> Result<(Arc<dyn ChunkStore>, RunReport), EngineError> {
        let store = build_store(circuit.n_qubits(), &self.cfg)?;
        let fleet = mq_device::DeviceTopology::homogeneous(self.cfg.devices, device_spec).build();
        let report = engine::hybrid::run_fleet(&store, circuit, &self.cfg, &fleet, true)?;
        Ok((store, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_circuit::library;

    #[test]
    fn facade_simulates_ghz() {
        let sim = MemQSim::new(MemQSimConfig {
            chunk_bits: 4,
            ..Default::default()
        });
        let out = sim.simulate(&library::ghz(8)).unwrap();
        assert!((out.probability(0) - 0.5).abs() < 1e-6);
        assert!((out.probability(255) - 0.5).abs() < 1e-6);
        assert!(out.compression_ratio > 1.0);
        assert!(out.report.stages >= 1);
        assert_eq!(out.to_dense().len(), 256);
    }

    #[test]
    fn facade_exposes_config() {
        let cfg = MemQSimConfig::default();
        let sim = MemQSim::new(cfg);
        assert_eq!(sim.config(), &cfg);
    }

    #[test]
    fn facade_hybrid_path() {
        let sim = MemQSim::new(MemQSimConfig {
            chunk_bits: 3,
            dual_stream: true,
            ..Default::default()
        });
        let (store, report) = sim
            .simulate_hybrid(&library::ghz(7), mq_device::DeviceSpec::tiny_test(1 << 10))
            .unwrap();
        assert!((store.probability(0).unwrap() - 0.5).abs() < 1e-6);
        assert!(report.groups_device > 0);
        assert!(report.device.modeled > std::time::Duration::ZERO);
    }
}
