//! The compressed chunked state vector — MEMQSIM's resident representation.
//!
//! The `2^n`-amplitude state lives in CPU memory as `2^(n-c)` independently
//! compressed chunks of `2^c` amplitudes (paper Fig. 2, "offline stage").
//! Chunks are individually locked so pipeline threads and "idle core"
//! workers can stream different chunks concurrently. The store keeps
//! running totals of resident compressed bytes and their peak — the numbers
//! behind the paper's "+5 qubits in the same memory" claim.

use mq_compress::{compress_complex, decompress_complex, Codec, CodecError, CompressionStats};
use mq_num::{bits, Complex64};
use mq_telemetry::{Counter, Telemetry};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// FNV-1a 64-bit hash — the chunk integrity checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// One resident chunk: compressed bytes + integrity checksum.
#[derive(Debug, Default)]
struct ChunkSlot {
    bytes: Vec<u8>,
    checksum: u64,
}

/// A chunked, compressed state vector resident in CPU memory.
pub struct CompressedStateVector {
    n_qubits: u32,
    chunk_bits: u32,
    codec: Arc<dyn Codec>,
    chunks: Vec<Mutex<ChunkSlot>>,
    stats: Mutex<CompressionStats>,
    current_bytes: AtomicUsize,
    peak_bytes: AtomicUsize,
    /// Optional per-run instrumentation; engines attach it for the duration
    /// of a run so codec traffic lands in the run's counter record.
    telemetry: Mutex<Option<Telemetry>>,
}

impl CompressedStateVector {
    /// Builds the compressed `|0...0>` state.
    pub fn zero_state(n_qubits: u32, chunk_bits: u32, codec: Arc<dyn Codec>) -> Self {
        let chunk_bits = chunk_bits.min(n_qubits);
        let chunk_amps = 1usize << chunk_bits;
        let chunk_count = 1usize << (n_qubits - chunk_bits);
        let store = CompressedStateVector {
            n_qubits,
            chunk_bits,
            codec,
            chunks: (0..chunk_count)
                .map(|_| Mutex::new(ChunkSlot::default()))
                .collect(),
            stats: Mutex::new(CompressionStats::default()),
            current_bytes: AtomicUsize::new(0),
            peak_bytes: AtomicUsize::new(0),
            telemetry: Mutex::new(None),
        };
        let mut buf = vec![Complex64::ZERO; chunk_amps];
        buf[0] = Complex64::ONE;
        store.store_chunk(0, &buf);
        buf[0] = Complex64::ZERO;
        for i in 1..chunk_count {
            store.store_chunk(i, &buf);
        }
        store
    }

    /// Compresses an existing dense state.
    ///
    /// # Panics
    /// Panics if `amps.len()` is not a power of two.
    pub fn from_amplitudes(amps: &[Complex64], chunk_bits: u32, codec: Arc<dyn Codec>) -> Self {
        assert!(bits::is_pow2(amps.len()), "length must be a power of two");
        let n_qubits = bits::floor_log2(amps.len());
        let chunk_bits = chunk_bits.min(n_qubits);
        let chunk_amps = 1usize << chunk_bits;
        let chunk_count = amps.len() / chunk_amps;
        let store = CompressedStateVector {
            n_qubits,
            chunk_bits,
            codec,
            chunks: (0..chunk_count)
                .map(|_| Mutex::new(ChunkSlot::default()))
                .collect(),
            stats: Mutex::new(CompressionStats::default()),
            current_bytes: AtomicUsize::new(0),
            peak_bytes: AtomicUsize::new(0),
            telemetry: Mutex::new(None),
        };
        for (i, piece) in amps.chunks_exact(chunk_amps).enumerate() {
            store.store_chunk(i, piece);
        }
        store
    }

    /// Register width.
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    /// Chunk size exponent.
    pub fn chunk_bits(&self) -> u32 {
        self.chunk_bits
    }

    /// Amplitudes per chunk.
    pub fn chunk_amps(&self) -> usize {
        1usize << self.chunk_bits
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// The codec in use.
    pub fn codec(&self) -> &Arc<dyn Codec> {
        &self.codec
    }

    /// Attaches a telemetry handle: until [`detach_telemetry`]
    /// (Self::detach_telemetry), every chunk load/store contributes to the
    /// run's `bytes_decompressed` / `bytes_compressed` / `chunk_visits`
    /// counters. Engines attach at run start and detach before returning.
    pub fn attach_telemetry(&self, telemetry: Telemetry) {
        *self.telemetry.lock() = Some(telemetry);
    }

    /// Detaches the telemetry handle, if any.
    pub fn detach_telemetry(&self) {
        *self.telemetry.lock() = None;
    }

    /// Decompresses chunk `i` into `out` (`out.len()` must equal
    /// [`CompressedStateVector::chunk_amps`]). Verifies the chunk's
    /// integrity checksum first, so silent memory corruption surfaces as a
    /// typed error rather than garbage amplitudes.
    pub fn load_chunk(&self, i: usize, out: &mut [Complex64]) -> Result<(), CodecError> {
        assert_eq!(out.len(), self.chunk_amps(), "chunk buffer size mismatch");
        let guard = self.chunks[i].lock();
        if fnv1a(&guard.bytes) != guard.checksum {
            return Err(CodecError::Corrupt(format!(
                "chunk {i} failed its integrity checksum"
            )));
        }
        if let Some(t) = self.telemetry.lock().as_ref() {
            t.add(Counter::BytesDecompressed, guard.bytes.len() as u64);
            t.add(Counter::ChunkVisits, 1);
        }
        decompress_complex(self.codec.as_ref(), &guard.bytes, out)
    }

    /// Compresses `amps` as the new contents of chunk `i`.
    pub fn store_chunk(&self, i: usize, amps: &[Complex64]) {
        assert_eq!(amps.len(), self.chunk_amps(), "chunk buffer size mismatch");
        let bytes = compress_complex(self.codec.as_ref(), amps);
        let new_len = bytes.len();
        let checksum = fnv1a(&bytes);
        let mut guard = self.chunks[i].lock();
        let old_len = guard.bytes.len();
        *guard = ChunkSlot { bytes, checksum };
        drop(guard);
        self.stats.lock().record(amps.len() * 16, new_len);
        if let Some(t) = self.telemetry.lock().as_ref() {
            t.add(Counter::BytesCompressed, new_len as u64);
        }
        // Update resident total and the peak high-water mark.
        let prev = self.current_bytes.fetch_add(new_len, Ordering::Relaxed) + new_len;
        self.current_bytes.fetch_sub(old_len, Ordering::Relaxed);
        self.peak_bytes.fetch_max(prev, Ordering::Relaxed);
    }

    /// Current resident compressed bytes.
    pub fn compressed_bytes(&self) -> usize {
        self.current_bytes.load(Ordering::Relaxed)
    }

    /// Peak resident compressed bytes observed so far.
    pub fn peak_compressed_bytes(&self) -> usize {
        self.peak_bytes.load(Ordering::Relaxed)
    }

    /// Bytes a dense representation would need.
    pub fn dense_bytes(&self) -> usize {
        (1usize << self.n_qubits) * 16
    }

    /// Current overall compression ratio (dense / resident).
    pub fn current_ratio(&self) -> f64 {
        let c = self.compressed_bytes();
        if c == 0 {
            return 1.0;
        }
        self.dense_bytes() as f64 / c as f64
    }

    /// Cumulative compress-call statistics.
    pub fn cumulative_stats(&self) -> CompressionStats {
        *self.stats.lock()
    }

    /// Decompresses the whole state (exponential memory — small registers
    /// and verification only).
    pub fn to_dense(&self) -> Result<Vec<Complex64>, CodecError> {
        let mut out = vec![Complex64::ZERO; 1usize << self.n_qubits];
        let ca = self.chunk_amps();
        for i in 0..self.chunk_count() {
            self.load_chunk(i, &mut out[i * ca..(i + 1) * ca])?;
        }
        Ok(out)
    }

    /// L2 norm, computed streaming one chunk at a time.
    pub fn norm(&self) -> Result<f64, CodecError> {
        let mut buf = vec![Complex64::ZERO; self.chunk_amps()];
        let mut acc = 0.0f64;
        for i in 0..self.chunk_count() {
            self.load_chunk(i, &mut buf)?;
            acc += buf.iter().map(|z| z.norm_sqr()).sum::<f64>();
        }
        Ok(acc.sqrt())
    }

    /// Rescales the state to unit norm, streaming chunk by chunk (two
    /// passes). Long lossy runs accumulate slight denormalization; calling
    /// this periodically (or before sampling) repairs it at the cost of one
    /// decompress/recompress round. No-op within `tol` of 1.
    pub fn renormalize(&self, tol: f64) -> Result<f64, CodecError> {
        let norm = self.norm()?;
        if norm <= 0.0 || (norm - 1.0).abs() <= tol {
            return Ok(norm);
        }
        let inv = 1.0 / norm;
        let mut buf = vec![Complex64::ZERO; self.chunk_amps()];
        for i in 0..self.chunk_count() {
            self.load_chunk(i, &mut buf)?;
            for z in buf.iter_mut() {
                *z = *z * inv;
            }
            self.store_chunk(i, &buf);
        }
        Ok(norm)
    }

    /// Flips one byte of chunk `i`'s compressed representation — a fault
    /// injection hook for corruption-detection tests.
    #[doc(hidden)]
    pub fn debug_corrupt_chunk(&self, i: usize) {
        let mut guard = self.chunks[i].lock();
        if let Some(b) = guard.bytes.first_mut() {
            *b ^= 0xFF;
        }
    }

    /// Born probability of one basis state (decompresses one chunk).
    pub fn probability(&self, basis: usize) -> Result<f64, CodecError> {
        assert!(basis < 1usize << self.n_qubits, "basis state out of range");
        let (chunk, off) = bits::split_index(basis, self.chunk_bits);
        let mut buf = vec![Complex64::ZERO; self.chunk_amps()];
        self.load_chunk(chunk, &mut buf)?;
        Ok(buf[off].norm_sqr())
    }
}

impl std::fmt::Debug for CompressedStateVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompressedStateVector")
            .field("n_qubits", &self.n_qubits)
            .field("chunk_bits", &self.chunk_bits)
            .field("codec", &self.codec.name())
            .field("chunks", &self.chunks.len())
            .field("compressed_bytes", &self.compressed_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_compress::{CodecSpec, SzCodec, ZeroRleCodec};
    use mq_num::complex::c64;

    fn sz(eb: f64) -> Arc<dyn Codec> {
        Arc::new(SzCodec::new(eb))
    }

    #[test]
    fn zero_state_round_trips() {
        let store = CompressedStateVector::zero_state(10, 4, sz(1e-12));
        assert_eq!(store.chunk_count(), 64);
        assert_eq!(store.chunk_amps(), 16);
        let dense = store.to_dense().unwrap();
        assert!((dense[0].re - 1.0).abs() <= 1e-12);
        assert!(dense[1..].iter().all(|z| z.norm() <= 2e-12));
        assert!((store.norm().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_state_compresses_massively() {
        let store = CompressedStateVector::zero_state(16, 10, Arc::new(ZeroRleCodec));
        assert!(
            store.current_ratio() > 100.0,
            "ratio {}",
            store.current_ratio()
        );
        assert!(store.compressed_bytes() < store.dense_bytes() / 100);
    }

    #[test]
    fn from_amplitudes_round_trips_within_bound() {
        let eb = 1e-8;
        let amps: Vec<Complex64> = (0..1024)
            .map(|i| {
                c64(
                    (i as f64 * 0.01).sin() * 0.03,
                    (i as f64 * 0.02).cos() * 0.03,
                )
            })
            .collect();
        let store = CompressedStateVector::from_amplitudes(&amps, 6, sz(eb));
        let back = store.to_dense().unwrap();
        for (a, b) in amps.iter().zip(&back) {
            assert!((a.re - b.re).abs() <= eb);
            assert!((a.im - b.im).abs() <= eb);
        }
    }

    #[test]
    fn chunk_update_cycle() {
        let store = CompressedStateVector::zero_state(6, 3, sz(1e-12));
        let mut buf = vec![Complex64::ZERO; 8];
        store.load_chunk(3, &mut buf).unwrap();
        assert!(buf.iter().all(|z| z.norm() < 1e-11));
        for (k, z) in buf.iter_mut().enumerate() {
            *z = c64(k as f64 * 0.1, 0.0);
        }
        store.store_chunk(3, &buf);
        let mut buf2 = vec![Complex64::ZERO; 8];
        store.load_chunk(3, &mut buf2).unwrap();
        for (a, b) in buf.iter().zip(&buf2) {
            assert!((a.re - b.re).abs() <= 1e-11);
        }
    }

    #[test]
    fn chunk_bits_clamped_to_register() {
        let store = CompressedStateVector::zero_state(3, 10, sz(1e-12));
        assert_eq!(store.chunk_bits(), 3);
        assert_eq!(store.chunk_count(), 1);
    }

    #[test]
    fn probability_reads_single_chunk() {
        let mut amps = vec![Complex64::ZERO; 64];
        amps[37] = Complex64::ONE;
        let store = CompressedStateVector::from_amplitudes(&amps, 3, sz(1e-12));
        assert!((store.probability(37).unwrap() - 1.0).abs() < 1e-9);
        assert!(store.probability(36).unwrap() < 1e-9);
    }

    #[test]
    fn byte_accounting_tracks_updates() {
        let store = CompressedStateVector::zero_state(8, 4, sz(1e-12));
        let initial = store.compressed_bytes();
        assert!(initial > 0);
        // Overwrite a chunk with incompressible noise: bytes must grow.
        let noisy: Vec<Complex64> = (0..16)
            .map(|i| {
                let x = ((i * 2654435761usize) % 1000) as f64 / 1000.0;
                c64(x, 1.0 - x)
            })
            .collect();
        store.store_chunk(0, &noisy);
        assert!(store.compressed_bytes() > initial);
        assert!(store.peak_compressed_bytes() >= store.compressed_bytes());
        let stats = store.cumulative_stats();
        assert_eq!(stats.blocks, 16 + 1);
    }

    #[test]
    fn concurrent_chunk_access_is_safe() {
        let store = Arc::new(CompressedStateVector::zero_state(10, 5, sz(1e-12)));
        std::thread::scope(|s| {
            for t in 0..4usize {
                let store = store.clone();
                s.spawn(move || {
                    let mut buf = vec![Complex64::ZERO; 32];
                    for round in 0..16 {
                        let i = (t * 16 + round) % store.chunk_count();
                        store.load_chunk(i, &mut buf).unwrap();
                        buf[0] = c64(t as f64, round as f64);
                        store.store_chunk(i, &buf);
                    }
                });
            }
        });
        // Still structurally sound.
        assert!(store.to_dense().is_ok());
    }

    #[test]
    fn lossless_codec_gives_exact_round_trip() {
        let spec = CodecSpec::Fpc;
        let amps: Vec<Complex64> = (0..256).map(|i| c64(i as f64, -(i as f64))).collect();
        let store = CompressedStateVector::from_amplitudes(&amps, 4, spec.build().into());
        let back = store.to_dense().unwrap();
        assert_eq!(amps, back);
    }

    #[test]
    fn telemetry_attach_detach_counts_codec_traffic() {
        let store = CompressedStateVector::zero_state(8, 4, sz(1e-12));
        let t = Telemetry::new();
        store.attach_telemetry(t.clone());
        let mut buf = vec![Complex64::ZERO; 16];
        store.load_chunk(0, &mut buf).unwrap();
        store.store_chunk(1, &buf);
        assert_eq!(t.counter(Counter::ChunkVisits), 1);
        assert!(t.counter(Counter::BytesDecompressed) > 0);
        assert!(t.counter(Counter::BytesCompressed) > 0);
        // After detaching, traffic no longer lands in the record.
        store.detach_telemetry();
        let before = t.counter(Counter::ChunkVisits);
        store.load_chunk(2, &mut buf).unwrap();
        assert_eq!(t.counter(Counter::ChunkVisits), before);
    }

    #[test]
    fn renormalize_repairs_drift() {
        let amps: Vec<Complex64> = (0..64).map(|i| c64(0.2 * ((i % 5) as f64), 0.1)).collect();
        let store = CompressedStateVector::from_amplitudes(&amps, 3, sz(1e-12));
        let before = store.norm().unwrap();
        assert!(
            (before - 1.0).abs() > 0.1,
            "test state must be denormalized"
        );
        let reported = store.renormalize(1e-12).unwrap();
        assert!((reported - before).abs() < 1e-9);
        let after = store.norm().unwrap();
        assert!((after - 1.0).abs() < 1e-9, "norm after repair: {after}");
        // Within tolerance: no-op.
        let again = store.renormalize(1e-6).unwrap();
        assert!((again - 1.0).abs() < 1e-9);
    }
}
