//! The compressed chunked state vector — MEMQSIM's resident representation.
//!
//! The `2^n`-amplitude state lives in CPU memory as `2^(n-c)` independently
//! compressed chunks of `2^c` amplitudes (paper Fig. 2, "offline stage").
//! Chunks are individually locked so pipeline threads and "idle core"
//! workers can stream different chunks concurrently. The store keeps
//! running totals of resident compressed bytes and their peak — the numbers
//! behind the paper's "+5 qubits in the same memory" claim.
//!
//! ## Residency cache
//!
//! On top of the compressed slots sits an optional **write-back residency
//! cache** ([`CompressedStateVector::set_cache`]): a recency-tracked set of
//! decompressed chunks bounded by a byte budget. Loads of resident chunks
//! skip the checksum and the codec entirely; stores replace the resident
//! copy and mark it dirty instead of recompressing; dirty chunks reach the
//! compressed slot only on eviction or [`flush`]
//! (CompressedStateVector::flush), and clean evictions drop the buffer with
//! zero codec work. Eviction is scan-resistant: on overflow the freshest
//! entry goes, protecting the unharvested tail of a sweep (see
//! `make_room` for why classic LRU would thrash here). A
//! content fingerprint short-circuits stores of
//! unmodified chunks. Cache bytes count toward
//! [`peak_resident_bytes`](CompressedStateVector::peak_resident_bytes) so
//! the memory-efficiency claim stays truthful.
//!
//! Lock order: the cache mutex may be held while taking a chunk-slot lock
//! (evictions and write-backs commit the slot under the cache lock, which
//! is what makes the gen-checked write-back race free), but **never** the
//! reverse — the load path releases the slot lock before touching the
//! cache.

use mq_compress::{compress_complex, decompress_complex, Codec, CodecError, CompressionStats};
use mq_num::{bits, Complex64};
use mq_telemetry::{Counter, Telemetry};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// FNV-1a 64-bit hash — the chunk integrity checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// FNV-1a over the raw amplitude bits — the cache's content fingerprint.
fn fingerprint_amps(amps: &[Complex64]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for z in amps {
        for b in z.re.to_le_bytes().into_iter().chain(z.im.to_le_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// One resident chunk: compressed bytes + integrity checksum.
#[derive(Debug, Default)]
struct ChunkSlot {
    bytes: Vec<u8>,
    checksum: u64,
}

/// When cached stores reach the compressed slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// Stores dirty the resident copy; recompression happens on eviction
    /// or [`flush`](CompressedStateVector::flush) (the default).
    #[default]
    WriteBack,
    /// Stores keep the resident copy *and* recompress into the slot
    /// immediately, so the compressed representation is never stale.
    WriteThrough,
}

/// One decompressed chunk resident in the cache.
struct CacheEntry {
    amps: Vec<Complex64>,
    /// True when the resident copy is newer than the compressed slot.
    dirty: bool,
    /// Monotonic generation stamp; write-backs commit only if it still
    /// matches their snapshot, so a concurrent store supersedes them.
    gen: u64,
    /// Content fingerprint of `amps` — stores of identical content skip
    /// recompression (and don't re-dirty a clean entry).
    fingerprint: u64,
    /// Recency clock value of the last touch (drives victim selection).
    tick: u64,
}

struct CacheState {
    map: HashMap<usize, CacheEntry>,
    /// Capacity in entries (`cache_bytes / decompressed chunk size`);
    /// 0 = cache disabled.
    capacity: usize,
    policy: CachePolicy,
    tick: u64,
    gen: u64,
}

impl CacheState {
    fn disabled() -> CacheState {
        CacheState {
            map: HashMap::new(),
            capacity: 0,
            policy: CachePolicy::WriteBack,
            tick: 0,
            gen: 0,
        }
    }
}

/// A chunked, compressed state vector resident in CPU memory.
pub struct CompressedStateVector {
    n_qubits: u32,
    chunk_bits: u32,
    codec: Arc<dyn Codec>,
    chunks: Vec<Mutex<ChunkSlot>>,
    /// Per-slot write versions, bumped under the slot lock on every slot
    /// write; the load path uses them to avoid admitting a stale decode
    /// into the cache after a concurrent write-back.
    versions: Vec<AtomicU64>,
    stats: Mutex<CompressionStats>,
    current_bytes: AtomicUsize,
    peak_bytes: AtomicUsize,
    cache: Mutex<CacheState>,
    /// Lock-free mirror of the cache capacity so the disabled case costs
    /// one relaxed load on the hot path.
    cache_capacity: AtomicUsize,
    cache_bytes_now: AtomicUsize,
    peak_cache_bytes: AtomicUsize,
    /// Peak of compressed + cache bytes observed at any instant.
    peak_resident: AtomicUsize,
    /// Optional per-run instrumentation; engines attach it for the duration
    /// of a run so codec traffic lands in the run's counter record. Read
    /// locks only on the per-chunk hot path; write locks on attach/detach.
    telemetry: RwLock<Option<Telemetry>>,
}

impl CompressedStateVector {
    fn new_empty(n_qubits: u32, chunk_bits: u32, codec: Arc<dyn Codec>) -> Self {
        let chunk_count = 1usize << (n_qubits - chunk_bits);
        CompressedStateVector {
            n_qubits,
            chunk_bits,
            codec,
            chunks: (0..chunk_count)
                .map(|_| Mutex::new(ChunkSlot::default()))
                .collect(),
            versions: (0..chunk_count).map(|_| AtomicU64::new(0)).collect(),
            stats: Mutex::new(CompressionStats::default()),
            current_bytes: AtomicUsize::new(0),
            peak_bytes: AtomicUsize::new(0),
            cache: Mutex::new(CacheState::disabled()),
            cache_capacity: AtomicUsize::new(0),
            cache_bytes_now: AtomicUsize::new(0),
            peak_cache_bytes: AtomicUsize::new(0),
            peak_resident: AtomicUsize::new(0),
            telemetry: RwLock::new(None),
        }
    }

    /// Builds the compressed `|0...0>` state.
    pub fn zero_state(n_qubits: u32, chunk_bits: u32, codec: Arc<dyn Codec>) -> Self {
        let chunk_bits = chunk_bits.min(n_qubits);
        let chunk_amps = 1usize << chunk_bits;
        let chunk_count = 1usize << (n_qubits - chunk_bits);
        let store = CompressedStateVector::new_empty(n_qubits, chunk_bits, codec);
        let mut buf = vec![Complex64::ZERO; chunk_amps];
        buf[0] = Complex64::ONE;
        store.store_chunk(0, &buf);
        buf[0] = Complex64::ZERO;
        for i in 1..chunk_count {
            store.store_chunk(i, &buf);
        }
        store
    }

    /// Compresses an existing dense state.
    ///
    /// # Panics
    /// Panics if `amps.len()` is not a power of two.
    pub fn from_amplitudes(amps: &[Complex64], chunk_bits: u32, codec: Arc<dyn Codec>) -> Self {
        assert!(bits::is_pow2(amps.len()), "length must be a power of two");
        let n_qubits = bits::floor_log2(amps.len());
        let chunk_bits = chunk_bits.min(n_qubits);
        let chunk_amps = 1usize << chunk_bits;
        let store = CompressedStateVector::new_empty(n_qubits, chunk_bits, codec);
        for (i, piece) in amps.chunks_exact(chunk_amps).enumerate() {
            store.store_chunk(i, piece);
        }
        store
    }

    /// Register width.
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    /// Chunk size exponent.
    pub fn chunk_bits(&self) -> u32 {
        self.chunk_bits
    }

    /// Amplitudes per chunk.
    pub fn chunk_amps(&self) -> usize {
        1usize << self.chunk_bits
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// The codec in use.
    pub fn codec(&self) -> &Arc<dyn Codec> {
        &self.codec
    }

    /// Decompressed bytes one cache entry occupies.
    fn entry_bytes(&self) -> usize {
        self.chunk_amps() * 16
    }

    /// Attaches a telemetry handle: until [`detach_telemetry`]
    /// (Self::detach_telemetry), every chunk load/store contributes to the
    /// run's `bytes_decompressed` / `bytes_compressed` / `chunk_visits`
    /// counters (and the cache counters while a cache is configured).
    /// Engines attach at run start and detach before returning.
    pub fn attach_telemetry(&self, telemetry: Telemetry) {
        *self.telemetry.write() = Some(telemetry);
    }

    /// Detaches the telemetry handle, if any.
    pub fn detach_telemetry(&self) {
        *self.telemetry.write() = None;
    }

    fn count(&self, counter: Counter, delta: u64) {
        if let Some(t) = self.telemetry.read().as_ref() {
            t.add(counter, delta);
        }
    }

    // ------------------------------------------------------------------
    // Residency cache
    // ------------------------------------------------------------------

    /// Configures the residency cache: up to `cache_bytes` of decompressed
    /// chunks stay resident (rounded down to whole chunks; budgets below
    /// one chunk disable the cache, as does 0). Reconfiguration writes back
    /// and drops everything resident under the old settings first, so it
    /// also serves as a full spill.
    pub fn set_cache(&self, cache_bytes: usize, policy: CachePolicy) {
        let capacity = cache_bytes / self.entry_bytes();
        {
            let cache = self.cache.lock();
            if cache.capacity == capacity && cache.policy == policy {
                return;
            }
        }
        self.drain_cache();
        let mut cache = self.cache.lock();
        cache.capacity = capacity;
        cache.policy = policy;
        self.cache_capacity.store(capacity, Ordering::Relaxed);
    }

    /// Writes every dirty resident chunk back to its compressed slot
    /// (entries stay resident, now clean), so external views of the
    /// compressed representation — [`compressed_bytes`]
    /// (Self::compressed_bytes), direct slot readers — are coherent.
    pub fn flush(&self) {
        let dirty: Vec<(usize, Vec<Complex64>, u64)> = {
            let cache = self.cache.lock();
            cache
                .map
                .iter()
                .filter(|(_, e)| e.dirty)
                .map(|(&i, e)| (i, e.amps.clone(), e.gen))
                .collect()
        };
        for (i, amps, gen) in dirty {
            self.writeback(i, &amps, gen);
        }
    }

    /// Chunk indices currently resident in the cache (snapshot).
    pub fn resident_chunks(&self) -> Vec<usize> {
        self.cache.lock().map.keys().copied().collect()
    }

    /// Decompressed bytes currently held by the residency cache.
    pub fn cache_resident_bytes(&self) -> usize {
        self.cache_bytes_now.load(Ordering::Relaxed)
    }

    /// Peak decompressed bytes the residency cache ever held.
    pub fn peak_cache_bytes(&self) -> usize {
        self.peak_cache_bytes.load(Ordering::Relaxed)
    }

    /// Peak of compressed + cache-resident bytes observed at any instant —
    /// the number to hold against a memory budget when the cache is on.
    pub fn peak_resident_bytes(&self) -> usize {
        self.peak_resident
            .load(Ordering::Relaxed)
            .max(self.peak_compressed_bytes())
    }

    fn note_resident(&self) {
        let resident = self.current_bytes.load(Ordering::Relaxed)
            + self.cache_bytes_now.load(Ordering::Relaxed);
        self.peak_resident.fetch_max(resident, Ordering::Relaxed);
    }

    /// Compresses `amps` and commits the result to slot `i` (satellite
    /// accounting fix: the signed-delta update and the stats/telemetry
    /// recording happen while still serialized on the slot, so `peak_bytes`
    /// can no longer transiently overshoot by the old chunk's length).
    fn write_slot(&self, i: usize, amps: &[Complex64]) {
        let bytes = compress_complex(self.codec.as_ref(), amps);
        self.commit_slot(i, bytes, amps.len());
    }

    /// Commits pre-compressed bytes to slot `i`.
    fn commit_slot(&self, i: usize, bytes: Vec<u8>, n_amps: usize) {
        let new_len = bytes.len();
        let checksum = fnv1a(&bytes);
        let guard = &mut *self.chunks[i].lock();
        let old_len = guard.bytes.len();
        *guard = ChunkSlot { bytes, checksum };
        self.versions[i].fetch_add(1, Ordering::Release);
        let cur = if new_len >= old_len {
            let d = new_len - old_len;
            self.current_bytes.fetch_add(d, Ordering::Relaxed) + d
        } else {
            let d = old_len - new_len;
            self.current_bytes.fetch_sub(d, Ordering::Relaxed) - d
        };
        self.peak_bytes.fetch_max(cur, Ordering::Relaxed);
        self.stats.lock().record(n_amps * 16, new_len);
        self.count(Counter::BytesCompressed, new_len as u64);
        self.note_resident();
    }

    /// Recompresses a dirty resident copy into its slot if generation
    /// `gen` still owns the entry; a concurrent store supersedes us.
    fn writeback(&self, i: usize, amps: &[Complex64], gen: u64) {
        let bytes = compress_complex(self.codec.as_ref(), amps);
        let mut cache = self.cache.lock();
        if let Some(e) = cache.map.get_mut(&i) {
            if e.gen == gen {
                self.commit_slot(i, bytes, amps.len());
                e.dirty = false;
            }
        }
    }

    /// Completes the eviction of a snapshot victim: dirty copies are
    /// recompressed, clean ones dropped with zero codec work. The gen
    /// check and the slot commit happen atomically under the cache lock,
    /// so a store that raced in newer content wins.
    fn evict(&self, i: usize, amps: Vec<Complex64>, dirty: bool, gen: u64) {
        let compressed = dirty.then(|| compress_complex(self.codec.as_ref(), &amps));
        let mut removed = false;
        {
            let mut cache = self.cache.lock();
            if cache.map.get(&i).is_some_and(|e| e.gen == gen) {
                if let Some(bytes) = compressed {
                    self.commit_slot(i, bytes, amps.len());
                }
                cache.map.remove(&i);
                // Byte accounting happens under the cache lock (derived from
                // the map size) so a concurrent insert can never observe a
                // transient sum above the real occupancy.
                self.cache_bytes_now
                    .store(cache.map.len() * self.entry_bytes(), Ordering::Relaxed);
                removed = true;
            }
        }
        if removed {
            self.count(Counter::Evictions, 1);
        }
    }

    /// Evicts entries until there is room for one more.
    ///
    /// The victim is the *most* recently touched entry, not the least: the
    /// engines sweep every chunk once per stage, and classic LRU degrades to
    /// zero hits on cyclic sweeps that exceed capacity (each entry is evicted
    /// moments before its next use). Evicting the freshest entry instead
    /// sacrifices a chunk that was already visited this sweep and protects
    /// the unharvested tail — the textbook scan-resistant choice, and within
    /// one entry of Belady-optimal for cyclic access.
    fn make_room(&self) {
        loop {
            let victim = {
                let cache = self.cache.lock();
                if cache.capacity == 0 || cache.map.len() < cache.capacity {
                    return;
                }
                cache
                    .map
                    .iter()
                    .max_by_key(|(_, e)| e.tick)
                    .map(|(&i, e)| (i, e.amps.clone(), e.dirty, e.gen))
            };
            match victim {
                Some((i, amps, dirty, gen)) => self.evict(i, amps, dirty, gen),
                None => return,
            }
        }
    }

    /// Evicts everything (write-backs included).
    fn drain_cache(&self) {
        loop {
            let victim = {
                let cache = self.cache.lock();
                match cache.map.iter().next() {
                    None => return,
                    Some((&i, e)) => (i, e.amps.clone(), e.dirty, e.gen),
                }
            };
            self.evict(victim.0, victim.1, victim.2, victim.3);
        }
    }

    /// Admits a freshly decoded chunk as a clean entry, unless the slot
    /// changed since the decode or the chunk raced in some other way.
    fn admit_clean(&self, i: usize, amps: &[Complex64], version: u64) {
        self.make_room();
        let fp = fingerprint_amps(amps);
        let mut inserted = false;
        {
            let mut cache = self.cache.lock();
            if cache.capacity > 0
                && cache.map.len() < cache.capacity
                && !cache.map.contains_key(&i)
                && self.versions[i].load(Ordering::Acquire) == version
            {
                cache.tick += 1;
                cache.gen += 1;
                let (tick, gen) = (cache.tick, cache.gen);
                cache.map.insert(
                    i,
                    CacheEntry {
                        amps: amps.to_vec(),
                        dirty: false,
                        gen,
                        fingerprint: fp,
                        tick,
                    },
                );
                inserted = true;
                let cur = cache.map.len() * self.entry_bytes();
                self.cache_bytes_now.store(cur, Ordering::Relaxed);
                self.peak_cache_bytes.fetch_max(cur, Ordering::Relaxed);
            }
        }
        if inserted {
            self.note_resident();
        }
    }

    // ------------------------------------------------------------------
    // Chunk IO
    // ------------------------------------------------------------------

    /// Decompresses chunk `i` into `out` (`out.len()` must equal
    /// [`CompressedStateVector::chunk_amps`]). Cache-resident chunks are
    /// served straight from the decompressed copy — no checksum, no codec.
    /// Otherwise the chunk's integrity checksum is verified first, so
    /// silent memory corruption surfaces as a typed error rather than
    /// garbage amplitudes.
    pub fn load_chunk(&self, i: usize, out: &mut [Complex64]) -> Result<(), CodecError> {
        assert_eq!(out.len(), self.chunk_amps(), "chunk buffer size mismatch");
        let cached = self.cache_capacity.load(Ordering::Relaxed) > 0;
        if cached {
            let mut cache = self.cache.lock();
            cache.tick += 1;
            let tick = cache.tick;
            if let Some(e) = cache.map.get_mut(&i) {
                e.tick = tick;
                out.copy_from_slice(&e.amps);
                drop(cache);
                if let Some(t) = self.telemetry.read().as_ref() {
                    t.add(Counter::ChunkVisits, 1);
                    t.add(Counter::CacheHits, 1);
                }
                return Ok(());
            }
        }
        let version = {
            let guard = self.chunks[i].lock();
            if fnv1a(&guard.bytes) != guard.checksum {
                return Err(CodecError::Corrupt(format!(
                    "chunk {i} failed its integrity checksum"
                )));
            }
            if let Some(t) = self.telemetry.read().as_ref() {
                t.add(Counter::BytesDecompressed, guard.bytes.len() as u64);
                t.add(Counter::ChunkVisits, 1);
                if cached {
                    t.add(Counter::CacheMisses, 1);
                }
            }
            decompress_complex(self.codec.as_ref(), &guard.bytes, out)?;
            self.versions[i].load(Ordering::Acquire)
        };
        if cached {
            self.admit_clean(i, out, version);
        }
        Ok(())
    }

    /// Stores `amps` as the new contents of chunk `i`. With the cache off
    /// this compresses immediately; with it on, the resident copy is
    /// replaced and marked dirty (write-back) — recompression is deferred
    /// to eviction or [`flush`](Self::flush) — and a matching content
    /// fingerprint skips the store entirely.
    pub fn store_chunk(&self, i: usize, amps: &[Complex64]) {
        assert_eq!(amps.len(), self.chunk_amps(), "chunk buffer size mismatch");
        if self.cache_capacity.load(Ordering::Relaxed) == 0 {
            self.write_slot(i, amps);
            return;
        }
        let fp = fingerprint_amps(amps);
        let (skipped, gen, policy) = loop {
            // None = no room yet; Some((skipped, gen)) = entry updated.
            let mut outcome = None;
            let mut inserted = false;
            let policy;
            {
                let mut cache = self.cache.lock();
                policy = cache.policy;
                cache.tick += 1;
                cache.gen += 1;
                let (tick, gen) = (cache.tick, cache.gen);
                if let Some(e) = cache.map.get_mut(&i) {
                    e.tick = tick;
                    if e.fingerprint == fp {
                        outcome = Some((true, e.gen));
                    } else {
                        e.amps.copy_from_slice(amps);
                        e.fingerprint = fp;
                        e.dirty = true;
                        e.gen = gen;
                        outcome = Some((false, gen));
                    }
                } else if cache.map.len() < cache.capacity {
                    cache.map.insert(
                        i,
                        CacheEntry {
                            amps: amps.to_vec(),
                            dirty: true,
                            gen,
                            fingerprint: fp,
                            tick,
                        },
                    );
                    outcome = Some((false, gen));
                    inserted = true;
                    let cur = cache.map.len() * self.entry_bytes();
                    self.cache_bytes_now.store(cur, Ordering::Relaxed);
                    self.peak_cache_bytes.fetch_max(cur, Ordering::Relaxed);
                }
            }
            if inserted {
                self.note_resident();
            }
            match outcome {
                Some((s, g)) => break (s, g, policy),
                None => self.make_room(),
            }
        };
        if skipped {
            self.count(Counter::RecompressSkipped, 1);
        } else if policy == CachePolicy::WriteThrough {
            self.writeback(i, amps, gen);
        }
    }

    /// Current resident compressed bytes. With a write-back cache this can
    /// lag dirty resident copies; call [`flush`](Self::flush) first for an
    /// up-to-date compressed representation.
    pub fn compressed_bytes(&self) -> usize {
        self.current_bytes.load(Ordering::Relaxed)
    }

    /// Peak resident compressed bytes observed so far.
    pub fn peak_compressed_bytes(&self) -> usize {
        self.peak_bytes.load(Ordering::Relaxed)
    }

    /// Bytes a dense representation would need.
    pub fn dense_bytes(&self) -> usize {
        (1usize << self.n_qubits) * 16
    }

    /// Current overall compression ratio (dense / resident).
    pub fn current_ratio(&self) -> f64 {
        let c = self.compressed_bytes();
        if c == 0 {
            return 1.0;
        }
        self.dense_bytes() as f64 / c as f64
    }

    /// Cumulative compress-call statistics.
    pub fn cumulative_stats(&self) -> CompressionStats {
        *self.stats.lock()
    }

    /// Decompresses the whole state (exponential memory — small registers
    /// and verification only). Cache-resident chunks are read first so a
    /// miss can never evict a pending hit.
    pub fn to_dense(&self) -> Result<Vec<Complex64>, CodecError> {
        let mut out = vec![Complex64::ZERO; 1usize << self.n_qubits];
        let ca = self.chunk_amps();
        let mut done = vec![false; self.chunk_count()];
        for i in self.resident_chunks() {
            if i < done.len() && !done[i] {
                self.load_chunk(i, &mut out[i * ca..(i + 1) * ca])?;
                done[i] = true;
            }
        }
        for (i, done) in done.iter().enumerate() {
            if !done {
                self.load_chunk(i, &mut out[i * ca..(i + 1) * ca])?;
            }
        }
        Ok(out)
    }

    /// L2 norm, computed streaming one chunk at a time (cache residents
    /// first — the sum is order-free).
    pub fn norm(&self) -> Result<f64, CodecError> {
        let mut buf = vec![Complex64::ZERO; self.chunk_amps()];
        let mut acc = 0.0f64;
        let mut done = vec![false; self.chunk_count()];
        for i in self.resident_chunks() {
            if i < done.len() && !done[i] {
                self.load_chunk(i, &mut buf)?;
                acc += buf.iter().map(|z| z.norm_sqr()).sum::<f64>();
                done[i] = true;
            }
        }
        for (i, done) in done.iter().enumerate() {
            if !done {
                self.load_chunk(i, &mut buf)?;
                acc += buf.iter().map(|z| z.norm_sqr()).sum::<f64>();
            }
        }
        Ok(acc.sqrt())
    }

    /// Rescales the state to unit norm, streaming chunk by chunk (two
    /// passes). Long lossy runs accumulate slight denormalization; calling
    /// this periodically (or before sampling) repairs it at the cost of one
    /// decompress/recompress round. No-op within `tol` of 1.
    pub fn renormalize(&self, tol: f64) -> Result<f64, CodecError> {
        let norm = self.norm()?;
        if norm <= 0.0 || (norm - 1.0).abs() <= tol {
            return Ok(norm);
        }
        let inv = 1.0 / norm;
        let mut buf = vec![Complex64::ZERO; self.chunk_amps()];
        for i in 0..self.chunk_count() {
            self.load_chunk(i, &mut buf)?;
            for z in buf.iter_mut() {
                *z = *z * inv;
            }
            self.store_chunk(i, &buf);
        }
        Ok(norm)
    }

    /// Flips one byte of chunk `i`'s compressed representation — a fault
    /// injection hook for corruption-detection tests. Note a cache-resident
    /// chunk is still served from its (uncorrupted) decompressed copy; the
    /// corruption surfaces once the chunk leaves the cache.
    #[doc(hidden)]
    pub fn debug_corrupt_chunk(&self, i: usize) {
        let mut guard = self.chunks[i].lock();
        if let Some(b) = guard.bytes.first_mut() {
            *b ^= 0xFF;
        }
        self.versions[i].fetch_add(1, Ordering::Release);
    }

    /// Born probability of one basis state (decompresses one chunk).
    pub fn probability(&self, basis: usize) -> Result<f64, CodecError> {
        assert!(basis < 1usize << self.n_qubits, "basis state out of range");
        let (chunk, off) = bits::split_index(basis, self.chunk_bits);
        let mut buf = vec![Complex64::ZERO; self.chunk_amps()];
        self.load_chunk(chunk, &mut buf)?;
        Ok(buf[off].norm_sqr())
    }
}

impl std::fmt::Debug for CompressedStateVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompressedStateVector")
            .field("n_qubits", &self.n_qubits)
            .field("chunk_bits", &self.chunk_bits)
            .field("codec", &self.codec.name())
            .field("chunks", &self.chunks.len())
            .field("compressed_bytes", &self.compressed_bytes())
            .field(
                "cache_capacity_chunks",
                &self.cache_capacity.load(Ordering::Relaxed),
            )
            .field("cache_resident_bytes", &self.cache_resident_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_compress::{CodecSpec, SzCodec, ZeroRleCodec};
    use mq_num::complex::c64;

    fn sz(eb: f64) -> Arc<dyn Codec> {
        Arc::new(SzCodec::new(eb))
    }

    #[test]
    fn zero_state_round_trips() {
        let store = CompressedStateVector::zero_state(10, 4, sz(1e-12));
        assert_eq!(store.chunk_count(), 64);
        assert_eq!(store.chunk_amps(), 16);
        let dense = store.to_dense().unwrap();
        assert!((dense[0].re - 1.0).abs() <= 1e-12);
        assert!(dense[1..].iter().all(|z| z.norm() <= 2e-12));
        assert!((store.norm().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_state_compresses_massively() {
        let store = CompressedStateVector::zero_state(16, 10, Arc::new(ZeroRleCodec));
        assert!(
            store.current_ratio() > 100.0,
            "ratio {}",
            store.current_ratio()
        );
        assert!(store.compressed_bytes() < store.dense_bytes() / 100);
    }

    #[test]
    fn from_amplitudes_round_trips_within_bound() {
        let eb = 1e-8;
        let amps: Vec<Complex64> = (0..1024)
            .map(|i| {
                c64(
                    (i as f64 * 0.01).sin() * 0.03,
                    (i as f64 * 0.02).cos() * 0.03,
                )
            })
            .collect();
        let store = CompressedStateVector::from_amplitudes(&amps, 6, sz(eb));
        let back = store.to_dense().unwrap();
        for (a, b) in amps.iter().zip(&back) {
            assert!((a.re - b.re).abs() <= eb);
            assert!((a.im - b.im).abs() <= eb);
        }
    }

    #[test]
    fn chunk_update_cycle() {
        let store = CompressedStateVector::zero_state(6, 3, sz(1e-12));
        let mut buf = vec![Complex64::ZERO; 8];
        store.load_chunk(3, &mut buf).unwrap();
        assert!(buf.iter().all(|z| z.norm() < 1e-11));
        for (k, z) in buf.iter_mut().enumerate() {
            *z = c64(k as f64 * 0.1, 0.0);
        }
        store.store_chunk(3, &buf);
        let mut buf2 = vec![Complex64::ZERO; 8];
        store.load_chunk(3, &mut buf2).unwrap();
        for (a, b) in buf.iter().zip(&buf2) {
            assert!((a.re - b.re).abs() <= 1e-11);
        }
    }

    #[test]
    fn chunk_bits_clamped_to_register() {
        let store = CompressedStateVector::zero_state(3, 10, sz(1e-12));
        assert_eq!(store.chunk_bits(), 3);
        assert_eq!(store.chunk_count(), 1);
    }

    #[test]
    fn probability_reads_single_chunk() {
        let mut amps = vec![Complex64::ZERO; 64];
        amps[37] = Complex64::ONE;
        let store = CompressedStateVector::from_amplitudes(&amps, 3, sz(1e-12));
        assert!((store.probability(37).unwrap() - 1.0).abs() < 1e-9);
        assert!(store.probability(36).unwrap() < 1e-9);
    }

    #[test]
    fn byte_accounting_tracks_updates() {
        let store = CompressedStateVector::zero_state(8, 4, sz(1e-12));
        let initial = store.compressed_bytes();
        assert!(initial > 0);
        // Overwrite a chunk with incompressible noise: bytes must grow.
        let noisy: Vec<Complex64> = (0..16)
            .map(|i| {
                let x = ((i * 2654435761usize) % 1000) as f64 / 1000.0;
                c64(x, 1.0 - x)
            })
            .collect();
        store.store_chunk(0, &noisy);
        assert!(store.compressed_bytes() > initial);
        assert!(store.peak_compressed_bytes() >= store.compressed_bytes());
        let stats = store.cumulative_stats();
        assert_eq!(stats.blocks, 16 + 1);
    }

    #[test]
    fn concurrent_chunk_access_is_safe() {
        let store = Arc::new(CompressedStateVector::zero_state(10, 5, sz(1e-12)));
        std::thread::scope(|s| {
            for t in 0..4usize {
                let store = store.clone();
                s.spawn(move || {
                    let mut buf = vec![Complex64::ZERO; 32];
                    for round in 0..16 {
                        let i = (t * 16 + round) % store.chunk_count();
                        store.load_chunk(i, &mut buf).unwrap();
                        buf[0] = c64(t as f64, round as f64);
                        store.store_chunk(i, &buf);
                    }
                });
            }
        });
        // Still structurally sound.
        assert!(store.to_dense().is_ok());
    }

    #[test]
    fn lossless_codec_gives_exact_round_trip() {
        let spec = CodecSpec::Fpc;
        let amps: Vec<Complex64> = (0..256).map(|i| c64(i as f64, -(i as f64))).collect();
        let store = CompressedStateVector::from_amplitudes(&amps, 4, spec.build().into());
        let back = store.to_dense().unwrap();
        assert_eq!(amps, back);
    }

    #[test]
    fn telemetry_attach_detach_counts_codec_traffic() {
        let store = CompressedStateVector::zero_state(8, 4, sz(1e-12));
        let t = Telemetry::new();
        store.attach_telemetry(t.clone());
        let mut buf = vec![Complex64::ZERO; 16];
        store.load_chunk(0, &mut buf).unwrap();
        store.store_chunk(1, &buf);
        assert_eq!(t.counter(Counter::ChunkVisits), 1);
        assert!(t.counter(Counter::BytesDecompressed) > 0);
        assert!(t.counter(Counter::BytesCompressed) > 0);
        // No cache configured: the cache counters stay silent.
        assert_eq!(t.counter(Counter::CacheHits), 0);
        assert_eq!(t.counter(Counter::CacheMisses), 0);
        // After detaching, traffic no longer lands in the record.
        store.detach_telemetry();
        let before = t.counter(Counter::ChunkVisits);
        store.load_chunk(2, &mut buf).unwrap();
        assert_eq!(t.counter(Counter::ChunkVisits), before);
    }

    #[test]
    fn renormalize_repairs_drift() {
        let amps: Vec<Complex64> = (0..64).map(|i| c64(0.2 * ((i % 5) as f64), 0.1)).collect();
        let store = CompressedStateVector::from_amplitudes(&amps, 3, sz(1e-12));
        let before = store.norm().unwrap();
        assert!(
            (before - 1.0).abs() > 0.1,
            "test state must be denormalized"
        );
        let reported = store.renormalize(1e-12).unwrap();
        assert!((reported - before).abs() < 1e-9);
        let after = store.norm().unwrap();
        assert!((after - 1.0).abs() < 1e-9, "norm after repair: {after}");
        // Within tolerance: no-op.
        let again = store.renormalize(1e-6).unwrap();
        assert!((again - 1.0).abs() < 1e-9);
    }

    // ------------------------------------------------------------------
    // Residency cache
    // ------------------------------------------------------------------

    /// A store with every chunk already written once, cache configured for
    /// `entries` resident chunks.
    fn cached_store(entries: usize) -> CompressedStateVector {
        let store = CompressedStateVector::zero_state(8, 4, sz(1e-12));
        store.set_cache(entries * store.chunk_amps() * 16, CachePolicy::WriteBack);
        store
    }

    #[test]
    fn cache_hits_skip_the_codec() {
        let store = cached_store(4);
        let t = Telemetry::new();
        store.attach_telemetry(t.clone());
        let mut buf = vec![Complex64::ZERO; 16];
        store.load_chunk(0, &mut buf).unwrap(); // miss: decodes + admits
        let decoded = t.counter(Counter::BytesDecompressed);
        assert!(decoded > 0);
        assert_eq!(t.counter(Counter::CacheMisses), 1);
        store.load_chunk(0, &mut buf).unwrap(); // hit: no codec traffic
        assert_eq!(t.counter(Counter::BytesDecompressed), decoded);
        assert_eq!(t.counter(Counter::CacheHits), 1);
        assert_eq!(t.counter(Counter::ChunkVisits), 2);
    }

    #[test]
    fn dirty_store_defers_recompression_until_flush() {
        let store = cached_store(4);
        let t = Telemetry::new();
        store.attach_telemetry(t.clone());
        let buf: Vec<Complex64> = (0..16).map(|k| c64(0.1 * k as f64, 0.0)).collect();
        store.store_chunk(2, &buf);
        assert_eq!(
            t.counter(Counter::BytesCompressed),
            0,
            "write-back must not touch the codec"
        );
        // The dirty resident copy is what loads see.
        let mut back = vec![Complex64::ZERO; 16];
        store.load_chunk(2, &mut back).unwrap();
        assert_eq!(back, buf);
        store.flush();
        assert!(t.counter(Counter::BytesCompressed) > 0);
        // Flushed entries stay resident (clean): another flush is free.
        let after = t.counter(Counter::BytesCompressed);
        store.flush();
        assert_eq!(t.counter(Counter::BytesCompressed), after);
        // And the slot now round-trips the data.
        store.set_cache(0, CachePolicy::WriteBack);
        store.load_chunk(2, &mut back).unwrap();
        for (a, b) in back.iter().zip(&buf) {
            assert!((a.re - b.re).abs() <= 1e-9);
        }
    }

    #[test]
    fn fingerprint_skips_recompression_of_unmodified_chunks() {
        let store = cached_store(4);
        let t = Telemetry::new();
        store.attach_telemetry(t.clone());
        let mut buf = vec![Complex64::ZERO; 16];
        store.load_chunk(5, &mut buf).unwrap(); // admit clean
        store.store_chunk(5, &buf); // identical content
        assert_eq!(t.counter(Counter::RecompressSkipped), 1);
        store.flush();
        assert_eq!(
            t.counter(Counter::BytesCompressed),
            0,
            "unmodified store must not dirty the entry"
        );
    }

    #[test]
    fn overflow_eviction_writes_back_dirty_chunks() {
        let store = cached_store(2);
        let t = Telemetry::new();
        store.attach_telemetry(t.clone());
        let mk = |seed: usize| -> Vec<Complex64> {
            (0..16)
                .map(|k| c64((seed * 16 + k) as f64 * 0.01, 0.0))
                .collect()
        };
        // Three dirty stores through a 2-entry cache: one must be evicted
        // (the freshest at overflow time — scan-resistant victim choice).
        store.store_chunk(0, &mk(0));
        store.store_chunk(1, &mk(1));
        store.store_chunk(2, &mk(2));
        assert!(t.counter(Counter::Evictions) >= 1);
        assert!(
            t.counter(Counter::BytesCompressed) > 0,
            "dirty eviction must recompress"
        );
        assert!(store.cache_resident_bytes() <= 2 * store.chunk_amps() * 16);
        // All three chunks readable and correct, evicted or resident alike.
        for seed in 0..3usize {
            let mut back = vec![Complex64::ZERO; 16];
            store.load_chunk(seed, &mut back).unwrap();
            for (a, b) in back.iter().zip(&mk(seed)) {
                assert!((a.re - b.re).abs() <= 1e-9, "chunk {seed}");
            }
        }
    }

    #[test]
    fn clean_eviction_is_codec_free() {
        let store = cached_store(1);
        let t = Telemetry::new();
        store.attach_telemetry(t.clone());
        let mut buf = vec![Complex64::ZERO; 16];
        store.load_chunk(0, &mut buf).unwrap(); // admit clean
        let compressed = t.counter(Counter::BytesCompressed);
        store.load_chunk(1, &mut buf).unwrap(); // evicts clean chunk 0
        assert!(t.counter(Counter::Evictions) >= 1);
        assert_eq!(
            t.counter(Counter::BytesCompressed),
            compressed,
            "clean eviction must not recompress"
        );
    }

    #[test]
    fn write_through_policy_keeps_slots_current() {
        let store = CompressedStateVector::zero_state(8, 4, sz(1e-12));
        store.set_cache(4 * store.chunk_amps() * 16, CachePolicy::WriteThrough);
        let t = Telemetry::new();
        store.attach_telemetry(t.clone());
        let buf: Vec<Complex64> = (0..16).map(|k| c64(0.05 * k as f64, 0.0)).collect();
        store.store_chunk(3, &buf);
        assert!(
            t.counter(Counter::BytesCompressed) > 0,
            "write-through compresses immediately"
        );
        // Dropping the cache without a flush must not lose the data.
        store.set_cache(0, CachePolicy::WriteBack);
        let mut back = vec![Complex64::ZERO; 16];
        store.load_chunk(3, &mut back).unwrap();
        for (a, b) in back.iter().zip(&buf) {
            assert!((a.re - b.re).abs() <= 1e-9);
        }
    }

    #[test]
    fn cache_budget_bounds_resident_bytes() {
        let store = cached_store(3);
        let budget = 3 * store.chunk_amps() * 16;
        let buf: Vec<Complex64> = (0..16).map(|k| c64(0.01 * k as f64, 0.0)).collect();
        for round in 0..4 {
            for i in 0..store.chunk_count() {
                let mut b = buf.clone();
                b[0] = c64(round as f64, i as f64);
                store.store_chunk(i, &b);
                assert!(
                    store.cache_resident_bytes() <= budget,
                    "cache overran its budget"
                );
            }
        }
        assert!(store.peak_cache_bytes() <= budget);
        assert!(store.peak_resident_bytes() >= store.peak_compressed_bytes());
    }

    #[test]
    fn cached_hit_bypasses_corruption_check_until_eviction() {
        let store = cached_store(2);
        let mut buf = vec![Complex64::ZERO; 16];
        store.load_chunk(7, &mut buf).unwrap(); // resident, clean
        store.debug_corrupt_chunk(7);
        // Resident: served from the (uncorrupted) decompressed copy.
        assert!(store.load_chunk(7, &mut buf).is_ok());
        // Non-resident chunk with corruption still surfaces the error.
        store.debug_corrupt_chunk(9);
        assert!(matches!(
            store.load_chunk(9, &mut buf),
            Err(CodecError::Corrupt(_))
        ));
        // Once chunk 7 leaves the cache (clean eviction — no write-back),
        // the corrupted slot is exposed again.
        store.set_cache(0, CachePolicy::WriteBack);
        assert!(matches!(
            store.load_chunk(7, &mut buf),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn concurrent_cached_access_is_safe_and_coherent() {
        let store = Arc::new(CompressedStateVector::zero_state(10, 5, sz(1e-12)));
        // Tiny cache: constant eviction churn under contention.
        store.set_cache(3 * store.chunk_amps() * 16, CachePolicy::WriteBack);
        std::thread::scope(|s| {
            for t in 0..4usize {
                let store = store.clone();
                s.spawn(move || {
                    let mut buf = vec![Complex64::ZERO; 32];
                    for round in 0..32 {
                        let i = (t * 16 + round) % store.chunk_count();
                        store.load_chunk(i, &mut buf).unwrap();
                        buf[0] = c64(t as f64, round as f64);
                        store.store_chunk(i, &buf);
                    }
                });
            }
        });
        store.flush();
        assert!(store.to_dense().is_ok());
        let budget = 3 * store.chunk_amps() * 16;
        assert!(store.peak_cache_bytes() <= budget);
    }

    #[test]
    fn set_cache_reconfigure_spills_and_preserves_data() {
        let store = cached_store(4);
        let buf: Vec<Complex64> = (0..16).map(|k| c64(0.02 * k as f64, 0.01)).collect();
        store.store_chunk(1, &buf); // dirty resident
                                    // Shrinking the cache spills; the data must survive.
        store.set_cache(store.chunk_amps() * 16, CachePolicy::WriteBack);
        let mut back = vec![Complex64::ZERO; 16];
        store.load_chunk(1, &mut back).unwrap();
        for (a, b) in back.iter().zip(&buf) {
            assert!((a.re - b.re).abs() <= 1e-9);
        }
        // Same settings: a no-op (resident entries survive).
        store.load_chunk(1, &mut back).unwrap(); // readmit
        let resident = store.resident_chunks();
        store.set_cache(store.chunk_amps() * 16, CachePolicy::WriteBack);
        assert_eq!(store.resident_chunks(), resident);
    }
}
