//! Shared test helpers for the engine and backend test modules.
//!
//! Test-only (`#[cfg(test)]`): one place for the config/store/run-and-compare
//! boilerplate that was previously copy-pasted across `engine::cpu`,
//! `engine::hybrid` and `backend` tests.

use crate::config::MemQSimConfig;
use crate::engine::{cpu, hybrid, Granularity, RunReport};
use crate::store::{build_store, ChunkStore};
use mq_circuit::unitary::run_dense;
use mq_circuit::Circuit;
use mq_compress::CodecSpec;
use mq_device::{Device, DeviceSpec};
use mq_num::metrics::max_amp_err;
use std::sync::Arc;

/// Canonical small test configuration: tiny chunks, pair-to-quad groups,
/// single worker, everything else default.
pub(crate) fn cfg(chunk_bits: u32, codec: CodecSpec) -> MemQSimConfig {
    MemQSimConfig {
        chunk_bits,
        max_high_qubits: 2,
        codec,
        workers: 1,
        ..Default::default()
    }
}

/// A |0...0> store stack built for `cfg` (the same path the backends use),
/// except with `chunk_bits` forced so geometry-mismatch tests can build
/// deliberately wrong stores.
pub(crate) fn zero_store(
    n_qubits: u32,
    chunk_bits: u32,
    cfg: &MemQSimConfig,
) -> Arc<dyn ChunkStore> {
    let cfg = MemQSimConfig { chunk_bits, ..*cfg };
    build_store(n_qubits, &cfg).expect("store construction")
}

/// A simulated device large enough for any test circuit.
pub(crate) fn tiny_device() -> Device {
    Device::new(DeviceSpec::tiny_test(1 << 20))
}

/// Runs `circuit` on the CPU engine and asserts the result matches the
/// dense reference within `tol`.
pub(crate) fn run_cpu_and_compare(
    circuit: &Circuit,
    config: &MemQSimConfig,
    tol: f64,
) -> RunReport {
    let store = zero_store(
        circuit.n_qubits(),
        config.effective_chunk_bits(circuit.n_qubits()),
        config,
    );
    let report = cpu::run(&store, circuit, config, Granularity::Staged).unwrap();
    compare_to_dense(&store, circuit, tol);
    report
}

/// Runs `circuit` on the hybrid engine and asserts the result matches the
/// dense reference within `tol`.
pub(crate) fn run_hybrid_and_compare(
    circuit: &Circuit,
    config: &MemQSimConfig,
    pipelined: bool,
    tol: f64,
) -> RunReport {
    let store = zero_store(
        circuit.n_qubits(),
        config.effective_chunk_bits(circuit.n_qubits()),
        config,
    );
    let dev = tiny_device();
    let report = hybrid::run(&store, circuit, config, &dev, pipelined).unwrap();
    compare_to_dense(&store, circuit, tol);
    report
}

fn compare_to_dense(store: &dyn ChunkStore, circuit: &Circuit, tol: f64) {
    let got = store.to_dense().unwrap();
    let want = run_dense(circuit, 0);
    let err = max_amp_err(&got, &want);
    assert!(err < tol, "{}: err {err}", circuit.name());
}
