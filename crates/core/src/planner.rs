//! Execution planning: stages (delegated to `mq_circuit::partition`) plus
//! chunk-group enumeration.
//!
//! For a stage with high pairing qubits `H`, the chunks of the state vector
//! split into disjoint *groups* of `2^|H|` chunks that must be co-resident:
//! group members differ exactly in the chunk-index bits `h - chunk_bits`
//! for `h` in `H`. Member order follows the rank combination, matching the
//! buffer layout [`specialize`](crate::specialize) assumes: member `j`
//! occupies buffer slots `[j * 2^c, (j+1) * 2^c)`.

use mq_circuit::partition::Stage;

/// Enumerates the chunk groups of a stage. Each group is the ordered list
/// of chunk indices co-resident in one buffer.
pub fn chunk_groups(n_qubits: u32, chunk_bits: u32, stage: &Stage) -> Vec<Vec<usize>> {
    let chunk_count = 1usize << n_qubits.saturating_sub(chunk_bits);
    let high_chunk_bits: Vec<u32> = stage
        .high_qubits
        .iter()
        .map(|&h| {
            debug_assert!(h >= chunk_bits, "high qubit below chunk boundary");
            h - chunk_bits
        })
        .collect();
    let high_mask: usize = high_chunk_bits.iter().map(|&b| 1usize << b).sum();
    let combos = 1usize << high_chunk_bits.len();

    let mut groups = Vec::with_capacity(chunk_count / combos);
    for base in 0..chunk_count {
        if base & high_mask != 0 {
            continue; // not a group base
        }
        let mut members = Vec::with_capacity(combos);
        for j in 0..combos {
            let mut m = base;
            for (r, &b) in high_chunk_bits.iter().enumerate() {
                if (j >> r) & 1 == 1 {
                    m |= 1usize << b;
                }
            }
            members.push(m);
        }
        groups.push(members);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_circuit::partition::{partition, PartitionConfig};
    use mq_circuit::{library, Circuit};

    fn stage_with_high(high: Vec<u32>) -> Stage {
        Stage::new(vec![], high)
    }

    #[test]
    fn local_stage_gives_singleton_groups() {
        let groups = chunk_groups(8, 4, &stage_with_high(vec![]));
        assert_eq!(groups.len(), 16);
        for (i, g) in groups.iter().enumerate() {
            assert_eq!(g, &vec![i]);
        }
    }

    #[test]
    fn single_high_qubit_pairs_chunks() {
        // n=8, c=4: chunks indexed by 4 bits; high qubit 6 -> chunk bit 2.
        let groups = chunk_groups(8, 4, &stage_with_high(vec![6]));
        assert_eq!(groups.len(), 8);
        for g in &groups {
            assert_eq!(g.len(), 2);
            assert_eq!(g[1], g[0] | 0b0100);
            assert_eq!(g[0] & 0b0100, 0);
        }
        // Every chunk appears exactly once.
        let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn two_high_qubits_quad_groups() {
        let groups = chunk_groups(8, 4, &stage_with_high(vec![5, 7]));
        assert_eq!(groups.len(), 4);
        for g in &groups {
            assert_eq!(g.len(), 4);
            // Member order: j=0 -> base, j=1 -> +bit(5-4)=2, j=2 -> +bit(7-4)=8,
            // j=3 -> both.
            assert_eq!(g[1], g[0] | 0b0010);
            assert_eq!(g[2], g[0] | 0b1000);
            assert_eq!(g[3], g[0] | 0b1010);
        }
    }

    #[test]
    fn groups_partition_all_chunks() {
        for high in [vec![], vec![8], vec![6, 9], vec![5, 7, 9]] {
            let groups = chunk_groups(10, 5, &stage_with_high(high.clone()));
            let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..32).collect::<Vec<_>>(), "high={high:?}");
        }
    }

    #[test]
    fn single_chunk_register() {
        let groups = chunk_groups(4, 4, &stage_with_high(vec![]));
        assert_eq!(groups, vec![vec![0]]);
    }

    #[test]
    fn plan_end_to_end_group_accounting() {
        let c: Circuit = library::qft(8);
        let plan = partition(
            &c,
            &PartitionConfig {
                chunk_bits: 4,
                max_high_qubits: 2,
            },
        );
        let mut visits = 0usize;
        for stage in &plan.stages {
            for g in chunk_groups(plan.n_qubits, plan.chunk_bits, stage) {
                visits += g.len();
            }
        }
        assert_eq!(visits, plan.chunk_visits());
    }
}
