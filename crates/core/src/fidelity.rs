//! Fidelity accounting for lossy-compressed simulation (experiment A4).
//!
//! Lossy chunk compression injects a bounded pointwise error at every
//! recompression; this module quantifies how that error accumulates into
//! state-level infidelity, by comparing any backend against the dense
//! reference.

use crate::backend::Backend;
use crate::engine::EngineError;
use mq_circuit::unitary::run_dense;
use mq_circuit::Circuit;
use mq_num::metrics;

/// Result-quality comparison of a backend run against the dense oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityReport {
    /// Quantum state fidelity `|<ref|got>|^2` (normalization-insensitive).
    pub fidelity: f64,
    /// Maximum absolute amplitude error.
    pub max_amp_err: f64,
    /// L2 norm of the produced state (drift from 1 measures lossy damage).
    pub norm: f64,
    /// Total-variation distance between the outcome distributions.
    pub total_variation: f64,
}

/// Runs `backend` on `circuit` and scores it against the exact dense
/// reference (exponential cost — keep registers small).
pub fn compare_to_dense(
    circuit: &Circuit,
    backend: &dyn Backend,
) -> Result<QualityReport, EngineError> {
    let run = backend.run(circuit)?;
    let reference = run_dense(circuit, 0);
    let got = &run.amplitudes;
    let p_ref: Vec<f64> = reference.iter().map(|z| z.norm_sqr()).collect();
    let norm_got = metrics::l2_norm(got);
    let p_got: Vec<f64> = got
        .iter()
        .map(|z| z.norm_sqr() / (norm_got * norm_got).max(f64::MIN_POSITIVE))
        .collect();
    Ok(QualityReport {
        fidelity: metrics::fidelity(&reference, got),
        max_amp_err: metrics::max_amp_err(&reference, got),
        norm: norm_got,
        total_variation: metrics::total_variation(&p_ref, &p_got),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{CompressedCpuBackend, DenseCpuBackend};
    use crate::config::MemQSimConfig;
    use mq_circuit::library;
    use mq_compress::CodecSpec;

    fn backend(eb: f64) -> CompressedCpuBackend {
        CompressedCpuBackend::new(MemQSimConfig {
            chunk_bits: 3,
            max_high_qubits: 2,
            codec: CodecSpec::Sz { eb },
            ..Default::default()
        })
    }

    #[test]
    fn dense_backend_is_exact() {
        let r = compare_to_dense(&library::qft(6), &DenseCpuBackend::default()).unwrap();
        assert!(r.fidelity > 1.0 - 1e-12);
        assert!(r.max_amp_err < 1e-12);
        assert!((r.norm - 1.0).abs() < 1e-12);
        assert!(r.total_variation < 1e-12);
    }

    #[test]
    fn tight_bound_keeps_fidelity_near_one() {
        let r = compare_to_dense(&library::qft(7), &backend(1e-12)).unwrap();
        assert!(r.fidelity > 1.0 - 1e-8, "fidelity {}", r.fidelity);
    }

    #[test]
    fn loose_bound_degrades_fidelity_monotonically() {
        let c = library::hardware_efficient_ansatz(7, 2, 11);
        let tight = compare_to_dense(&c, &backend(1e-12)).unwrap();
        let loose = compare_to_dense(&c, &backend(1e-4)).unwrap();
        assert!(tight.fidelity >= loose.fidelity);
        assert!(tight.max_amp_err <= loose.max_amp_err);
    }

    #[test]
    fn lossless_codec_is_exact_through_the_engine() {
        let b = CompressedCpuBackend::new(MemQSimConfig {
            chunk_bits: 3,
            max_high_qubits: 2,
            codec: CodecSpec::Fpc,
            ..Default::default()
        });
        let r = compare_to_dense(&library::grover(6, 5, 2), &b).unwrap();
        assert!(r.max_amp_err < 1e-12);
    }
}
