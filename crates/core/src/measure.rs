//! Measurement on the compressed store.
//!
//! Sampling never materializes the dense state: chunk probabilities are
//! accumulated streaming (one decompressed chunk at a time), shots are
//! assigned to chunks by inverse-CDF, and each needed chunk is decompressed
//! exactly once to resolve its shots' offsets.

use crate::planner::chunk_groups;
use crate::store::ChunkStore;
use mq_circuit::layout::QubitLayout;
use mq_circuit::partition::Stage;
use mq_compress::CodecError;
use mq_num::Complex64;
use mq_statevec::expval::{expectation, Pauli, PauliString};
use mq_statevec::State;
use rand::Rng;

/// Per-chunk total probabilities (streaming; one chunk resident at a time).
pub fn chunk_probabilities(store: &dyn ChunkStore) -> Result<Vec<f64>, CodecError> {
    let mut buf = vec![Complex64::ZERO; store.chunk_amps()];
    let mut probs = Vec::with_capacity(store.chunk_count());
    for i in 0..store.chunk_count() {
        store.load_chunk(i, &mut buf)?;
        probs.push(buf.iter().map(|z| z.norm_sqr()).sum());
    }
    Ok(probs)
}

/// Draws `shots` full-register samples, returning `(basis_state, count)`
/// pairs sorted by descending count (ties by state index).
pub fn sample_counts<R: Rng>(
    store: &dyn ChunkStore,
    shots: usize,
    rng: &mut R,
) -> Result<Vec<(usize, usize)>, CodecError> {
    let chunk_probs = chunk_probabilities(store)?;
    let total: f64 = chunk_probs.iter().sum();
    // Lossy compression can leave the norm slightly off 1; normalize here.
    assert!(total > 0.0, "state has zero norm");

    // Assign shots to chunks.
    let mut shots_per_chunk = vec![0usize; chunk_probs.len()];
    for _ in 0..shots {
        let mut r = rng.gen_range(0.0..total);
        let mut chosen = chunk_probs.len() - 1;
        for (i, &p) in chunk_probs.iter().enumerate() {
            if r < p {
                chosen = i;
                break;
            }
            r -= p;
        }
        shots_per_chunk[chosen] += 1;
    }

    // Resolve offsets chunk by chunk.
    let mut counts: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    let mut buf = vec![Complex64::ZERO; store.chunk_amps()];
    for (chunk, &k) in shots_per_chunk.iter().enumerate() {
        if k == 0 {
            continue;
        }
        store.load_chunk(chunk, &mut buf)?;
        let chunk_total: f64 = buf.iter().map(|z| z.norm_sqr()).sum();
        for _ in 0..k {
            let mut r = rng.gen_range(0.0..chunk_total.max(f64::MIN_POSITIVE));
            let mut offset = buf.len() - 1;
            for (o, z) in buf.iter().enumerate() {
                let p = z.norm_sqr();
                if r < p {
                    offset = o;
                    break;
                }
                r -= p;
            }
            let basis = (chunk << store.chunk_bits()) | offset;
            *counts.entry(basis).or_insert(0) += 1;
        }
    }
    let mut v: Vec<(usize, usize)> = counts.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    Ok(v)
}

/// Expectation of a product of Pauli-Z operators, computed streaming from
/// the compressed store (Z-strings are diagonal, so no pairing is needed):
/// `<Z_{q0} Z_{q1} ...> = sum_i p(i) * (-1)^(popcount of selected bits)`.
pub fn expect_z_product(store: &dyn ChunkStore, qubits: &[u32]) -> Result<f64, CodecError> {
    for &q in qubits {
        assert!(q < store.n_qubits(), "qubit {q} out of range");
    }
    let mask: usize = qubits.iter().map(|&q| 1usize << q).sum();
    let mut buf = vec![Complex64::ZERO; store.chunk_amps()];
    let mut acc = 0.0f64;
    let mut norm = 0.0f64;
    for chunk in 0..store.chunk_count() {
        store.load_chunk(chunk, &mut buf)?;
        let base = chunk << store.chunk_bits();
        for (off, z) in buf.iter().enumerate() {
            let p = z.norm_sqr();
            norm += p;
            let sign = if ((base | off) & mask).count_ones().is_multiple_of(2) {
                1.0
            } else {
                -1.0
            };
            acc += sign * p;
        }
    }
    // Normalize: lossy compression can leave the norm slightly off 1.
    Ok(acc / norm.max(f64::MIN_POSITIVE))
}

/// [`expect_z_product`] against a store whose amplitudes are held under a
/// non-identity logical→physical [`QubitLayout`] — the mid-run view of a
/// greedy-layout plan, before the engine's restore-to-identity epilogue.
///
/// Logical qubit `q` lives at physical position `layout.phys(q)`, so the
/// diagonal Z mask is built from the physical positions. After a completed
/// run the store is always back in identity layout and plain
/// [`expect_z_product`] is the right call; this variant exists for
/// inspection between stages (custom executors, debugging hooks).
pub fn expect_z_product_in_layout(
    store: &dyn ChunkStore,
    qubits: &[u32],
    layout: &QubitLayout,
) -> Result<f64, CodecError> {
    if layout.is_identity() {
        return expect_z_product(store, qubits);
    }
    let physical: Vec<u32> = qubits.iter().map(|&q| layout.phys(q)).collect();
    expect_z_product(store, &physical)
}

/// Expectation of an arbitrary Pauli string on the compressed store.
///
/// X/Y factors *pair* basis states: pairs within a chunk are local, pairs
/// across chunks are handled exactly like a cross-chunk gate — the string's
/// high X/Y qubits become the group set, and each chunk group is staged
/// into one buffer (the same machinery the engines use). Z factors are
/// diagonal: inside the buffer they evaluate locally; on qubits outside the
/// buffer their bit is fixed per group, contributing a constant sign.
///
/// # Panics
/// Panics if more than 8 X/Y factors sit at or above the chunk boundary
/// (the group working set is `2^k` chunks for `k` such factors).
pub fn expect_pauli(store: &dyn ChunkStore, p: &PauliString) -> Result<f64, CodecError> {
    let n = store.n_qubits();
    let c = store.chunk_bits();
    for &(q, _) in &p.0 {
        assert!(q < n, "Pauli qubit {q} out of range");
    }
    // Split the string: X/Y factors >= c define the group set H.
    let mut high: Vec<u32> =
        p.0.iter()
            .filter(|&&(q, op)| q >= c && op != Pauli::Z)
            .map(|&(q, _)| q)
            .collect();
    high.sort_unstable();
    high.dedup();
    assert!(
        high.len() <= 8,
        "{} cross-chunk X/Y factors exceed the 2^8-chunk group cap",
        high.len()
    );
    let stage = Stage::new(vec![], high.clone());
    let chunk_amps = store.chunk_amps();

    let mut acc = 0.0f64;
    let mut norm = 0.0f64;
    let mut buffer = vec![Complex64::ZERO; chunk_amps << high.len()];
    for group in chunk_groups(n, c, &stage) {
        for (j, &chunk) in group.iter().enumerate() {
            store.load_chunk(chunk, &mut buffer[j * chunk_amps..(j + 1) * chunk_amps])?;
        }
        // Remap the string into the buffer: local and in-H qubits keep a
        // buffer position; outside qubits must be Z and contribute a sign.
        let mut local = Vec::new();
        let mut sign = 1.0f64;
        for &(q, op) in &p.0 {
            if q < c {
                local.push((q, op));
            } else if let Some(rank) = high.iter().position(|&h| h == q) {
                local.push((c + rank as u32, op));
            } else {
                debug_assert_eq!(op, Pauli::Z, "outside factor must be Z");
                if (group[0] >> (q - c)) & 1 == 1 {
                    sign = -sign;
                }
            }
        }
        let state = State::from_amplitudes(&buffer);
        // expectation() is normalization-free numerator <b|P|b>; weight by
        // the group's squared norm contribution implicitly (amplitudes are
        // raw, not normalized).
        acc += sign * expectation(&state, &PauliString(local));
        norm += buffer.iter().map(|z| z.norm_sqr()).sum::<f64>();
    }
    Ok(acc / norm.max(f64::MIN_POSITIVE))
}

/// Expected MaxCut value over `edges`, streaming from the compressed store.
pub fn expected_cut(store: &dyn ChunkStore, edges: &[(u32, u32)]) -> Result<f64, CodecError> {
    let mut total = 0.0;
    for &(a, b) in edges {
        let zz = expect_z_product(store, &[a, b])?;
        total += (1.0 - zz) / 2.0;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemQSimConfig;
    use crate::engine::{cpu, Granularity};
    use crate::store::{ChunkStore, CompressedTier};
    use mq_circuit::library;
    use mq_compress::CodecSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn run_to_store(circuit: &mq_circuit::Circuit, chunk_bits: u32) -> Arc<dyn ChunkStore> {
        let cfg = MemQSimConfig {
            chunk_bits,
            max_high_qubits: 2,
            codec: CodecSpec::Sz { eb: 1e-12 },
            ..Default::default()
        };
        let store: Arc<dyn ChunkStore> = Arc::new(CompressedTier::zero_state(
            circuit.n_qubits(),
            chunk_bits,
            Arc::from(cfg.codec.build()),
        ));
        cpu::run(&store, circuit, &cfg, Granularity::Staged).unwrap();
        store
    }

    #[test]
    fn chunk_probabilities_sum_to_one() {
        let store = run_to_store(&library::qft(8), 4);
        let probs = chunk_probabilities(&store).unwrap();
        assert_eq!(probs.len(), 16);
        let total: f64 = probs.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn ghz_samples_only_the_two_extremes() {
        let store = run_to_store(&library::ghz(8), 4);
        let mut rng = StdRng::seed_from_u64(3);
        let counts = sample_counts(&store, 1000, &mut rng).unwrap();
        assert_eq!(counts.len(), 2);
        let states: Vec<usize> = counts.iter().map(|&(s, _)| s).collect();
        assert!(states.contains(&0) && states.contains(&255));
    }

    #[test]
    fn basis_state_always_samples_itself() {
        let mut c = mq_circuit::Circuit::new(6);
        c.x(1).x(4);
        let store = run_to_store(&c, 3);
        let mut rng = StdRng::seed_from_u64(9);
        let counts = sample_counts(&store, 64, &mut rng).unwrap();
        assert_eq!(counts, vec![(0b010010, 64)]);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let store = run_to_store(&library::w_state(6), 3);
        let a = sample_counts(&store, 200, &mut StdRng::seed_from_u64(1)).unwrap();
        let b = sample_counts(&store, 200, &mut StdRng::seed_from_u64(1)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn w_state_samples_single_excitations_only() {
        let store = run_to_store(&library::w_state(6), 3);
        let mut rng = StdRng::seed_from_u64(4);
        let counts = sample_counts(&store, 600, &mut rng).unwrap();
        for &(state, _) in &counts {
            assert_eq!(state.count_ones(), 1, "state {state:b}");
        }
        // All six excitations should appear with ~100 shots each.
        assert_eq!(counts.len(), 6);
        for &(_, c) in &counts {
            assert!((c as f64 - 100.0).abs() < 60.0, "count {c}");
        }
    }

    #[test]
    fn streaming_z_expectations_match_dense() {
        use mq_statevec::expval::{expectation, Pauli, PauliString};
        let circuit = library::hardware_efficient_ansatz(7, 2, 13);
        let store = run_to_store(&circuit, 3);
        let dense = mq_statevec::run_circuit(&circuit, &mq_statevec::CpuConfig::default());
        for qs in [vec![0u32], vec![2, 5], vec![0, 3, 6]] {
            let streaming = expect_z_product(&store, &qs).unwrap();
            let pauli = PauliString(qs.iter().map(|&q| (q, Pauli::Z)).collect());
            let reference = expectation(&dense, &pauli);
            assert!(
                (streaming - reference).abs() < 1e-6,
                "qs={qs:?}: {streaming} vs {reference}"
            );
        }
    }

    #[test]
    fn streaming_cut_matches_dense_path() {
        let n = 8;
        let edges = library::ring_graph(n);
        let circuit = library::qaoa_maxcut(n, &edges, &[0.5], &[0.4]);
        let store = run_to_store(&circuit, 4);
        let dense = mq_statevec::run_circuit(&circuit, &mq_statevec::CpuConfig::default());
        let streaming = expected_cut(&store, &edges).unwrap();
        let reference = mq_statevec::expval::expected_cut(&dense, &edges);
        assert!((streaming - reference).abs() < 1e-6);
    }

    #[test]
    fn z_expectation_on_basis_state() {
        let mut c = mq_circuit::Circuit::new(6);
        c.x(2);
        let store = run_to_store(&c, 3);
        assert!((expect_z_product(&store, &[2]).unwrap() + 1.0).abs() < 1e-9);
        assert!((expect_z_product(&store, &[0]).unwrap() - 1.0).abs() < 1e-9);
        assert!((expect_z_product(&store, &[0, 2]).unwrap() + 1.0).abs() < 1e-9);
    }

    #[test]
    fn layout_aware_z_expectation_sees_through_a_permutation() {
        use crate::store::build_store_from_amplitudes;
        use mq_circuit::layout::QubitLayout;

        let circuit = library::hardware_efficient_ansatz(7, 2, 13);
        let dense = mq_statevec::run_circuit(&circuit, &mq_statevec::CpuConfig::default());
        let cfg = MemQSimConfig {
            chunk_bits: 3,
            codec: CodecSpec::Sz { eb: 1e-12 },
            ..Default::default()
        };
        let identity_store = build_store_from_amplitudes(dense.amplitudes(), &cfg).unwrap();

        // Physically permute the state: logical qubits 1 and 5 trade places.
        let mut permuted = dense.amplitudes().to_vec();
        mq_statevec::apply::swap_index_bits(&mut permuted, 1, 5, 1);
        let permuted_store = build_store_from_amplitudes(&permuted, &cfg).unwrap();
        let mut layout = QubitLayout::identity(7);
        layout.swap_physical(1, 5);

        for qs in [vec![1u32], vec![5], vec![1, 5], vec![0, 1, 6]] {
            let want = expect_z_product(&identity_store, &qs).unwrap();
            let got = expect_z_product_in_layout(&permuted_store, &qs, &layout).unwrap();
            assert!((got - want).abs() < 1e-9, "qs={qs:?}: {got} vs {want}");
            // The plain call on the permuted store would read the wrong
            // positions — identity layout short-circuits to it.
            let ident = QubitLayout::identity(7);
            let same = expect_z_product_in_layout(&identity_store, &qs, &ident).unwrap();
            assert!((same - want).abs() < 1e-12);
        }
    }

    #[test]
    fn general_pauli_expectations_match_dense() {
        use mq_statevec::expval::{expectation as dense_expectation, PauliString};
        let circuit = library::hardware_efficient_ansatz(8, 2, 21);
        let store = run_to_store(&circuit, 3);
        let dense = mq_statevec::run_circuit(&circuit, &mq_statevec::CpuConfig::default());
        // Strings spanning local, cross-chunk X/Y, and outside-Z factors.
        for text in [
            "XIIIIIII", // local X
            "IIIIIIIX", // cross-chunk X (qubit 7 >= chunk_bits 3)
            "ZIIIIIIZ", // Z local + Z outside
            "XYIIIZIX", // mixed everything
            "IYIIYIII", // Y local + Y cross-chunk
            "ZZZZZZZZ",
        ] {
            let p = PauliString::parse(text);
            let got = expect_pauli(&store, &p).unwrap();
            let want = dense_expectation(&dense, &p);
            assert!(
                (got - want).abs() < 1e-6,
                "{text}: compressed {got} vs dense {want}"
            );
        }
    }

    #[test]
    fn ghz_stabilizers_on_the_compressed_store() {
        use mq_statevec::expval::PauliString;
        let store = run_to_store(&library::ghz(8), 3);
        // X^8 and Z_i Z_j are GHZ stabilizers (+1); single Z is 0.
        let xxxx = expect_pauli(&store, &PauliString::parse("XXXXXXXX")).unwrap();
        assert!((xxxx - 1.0).abs() < 1e-6, "X^8 = {xxxx}");
        let zz = expect_pauli(&store, &PauliString::parse("ZIIIIIIZ")).unwrap();
        assert!((zz - 1.0).abs() < 1e-6, "ZZ = {zz}");
        let z = expect_pauli(&store, &PauliString::parse("IIIZIIII")).unwrap();
        assert!(z.abs() < 1e-6, "Z = {z}");
    }
}
