//! Gate kernels.
//!
//! Every kernel takes a `&mut [Complex64]` whose length is a power of two
//! and *local* qubit indices into that buffer. Running a gate on a full
//! dense state and running it on a decompressed MEMQSIM chunk are the same
//! call — only the buffer and the index mapping differ. This is the code
//! the paper would run inside its GPU kernels; here it doubles as the CPU
//! path and the simulated-device kernel body.

use mq_circuit::gate::Gate;
use mq_circuit::matrix::{Mat2, Mat4};
use mq_num::bits;
use mq_num::Complex64;

/// Minimum buffer length before kernels bother spawning worker threads.
const PAR_THRESHOLD: usize = 1 << 15;

#[inline]
fn local_qubits(len: usize) -> u32 {
    debug_assert!(len.is_power_of_two(), "buffer length must be 2^m");
    len.trailing_zeros()
}

/// Splits `state` into contiguous block-aligned pieces and runs `f` on each,
/// using up to `workers` scoped threads. `block` must divide `state.len()`.
fn par_block_chunks<F>(state: &mut [Complex64], block: usize, workers: usize, f: F)
where
    F: Fn(&mut [Complex64]) + Sync,
{
    debug_assert_eq!(state.len() % block, 0);
    let nblocks = state.len() / block;
    let workers = workers.max(1).min(nblocks);
    if workers == 1 || state.len() < PAR_THRESHOLD {
        for chunk in state.chunks_exact_mut(block) {
            f(chunk);
        }
        return;
    }
    let per = nblocks.div_ceil(workers) * block;
    crossbeam::thread::scope(|s| {
        let mut rest = state;
        while !rest.is_empty() {
            let take = per.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let fref = &f;
            s.spawn(move |_| {
                for chunk in head.chunks_exact_mut(block) {
                    fref(chunk);
                }
            });
            rest = tail;
        }
    })
    .expect("kernel worker panicked");
}

/// Applies a general single-qubit matrix to local qubit `q`.
pub fn apply_mat2(state: &mut [Complex64], q: u32, m: &Mat2, workers: usize) {
    let n = local_qubits(state.len());
    assert!(q < n, "qubit {q} out of range for 2^{n} buffer");
    let half = 1usize << q;
    let block = half * 2;
    let m = *m;
    par_block_chunks(state, block, workers, move |chunk| {
        let (lo, hi) = chunk.split_at_mut(half);
        for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
            let (x, y) = m.apply(*a, *b);
            *a = x;
            *b = y;
        }
    });
}

/// Applies a diagonal single-qubit gate `diag(d0, d1)` to local qubit `q`.
pub fn apply_diag1(state: &mut [Complex64], q: u32, d0: Complex64, d1: Complex64, workers: usize) {
    let n = local_qubits(state.len());
    assert!(q < n, "qubit {q} out of range for 2^{n} buffer");
    let half = 1usize << q;
    let block = half * 2;
    par_block_chunks(state, block, workers, move |chunk| {
        let (lo, hi) = chunk.split_at_mut(half);
        if d0 != Complex64::ONE {
            for a in lo.iter_mut() {
                *a *= d0;
            }
        }
        for b in hi.iter_mut() {
            *b *= d1;
        }
    });
}

/// Applies a general two-qubit matrix to local qubits `(qa, qb)` — the
/// matrix basis index is `(bit_b << 1) | bit_a`, matching
/// [`Gate::mat4`](mq_circuit::gate::Gate::mat4).
pub fn apply_mat4(state: &mut [Complex64], qa: u32, qb: u32, m: &Mat4, workers: usize) {
    let n = local_qubits(state.len());
    assert!(qa < n && qb < n && qa != qb, "bad qubit pair ({qa},{qb})");
    let (lo, hi) = (qa.min(qb), qa.max(qb));
    // Process blocks of size 2^(hi+1); within each block all four group
    // members are reachable, keeping the parallel split trivially disjoint.
    let block = 1usize << (hi + 1);
    let m = *m;
    let sa = 1usize << qa;
    let sb = 1usize << qb;
    let per_block_groups = block >> 2;
    par_block_chunks(state, block, workers, move |chunk| {
        for g in 0..per_block_groups {
            let base = bits::insert_two_zero_bits(g, lo, hi);
            let i00 = base;
            let i01 = base | sa;
            let i10 = base | sb;
            let i11 = base | sa | sb;
            let out = m.apply([chunk[i00], chunk[i01], chunk[i10], chunk[i11]]);
            chunk[i00] = out[0];
            chunk[i01] = out[1];
            chunk[i10] = out[2];
            chunk[i11] = out[3];
        }
    });
}

/// Applies a diagonal two-qubit gate with diagonal `d` (indexed
/// `(bit_b << 1) | bit_a`) to local qubits `(qa, qb)`.
pub fn apply_diag2(state: &mut [Complex64], qa: u32, qb: u32, d: [Complex64; 4], workers: usize) {
    let n = local_qubits(state.len());
    assert!(qa < n && qb < n && qa != qb, "bad qubit pair ({qa},{qb})");
    let sa = 1usize << qa;
    let sb = 1usize << qb;
    // Element-wise: factor depends only on the two bits.
    let split = num_workers_split(state.len(), workers);
    mq_num::parallel::par_chunks_mut(state, split, move |start, chunk| {
        for (k, amp) in chunk.iter_mut().enumerate() {
            let i = start + k;
            let idx = (((i & sb) != 0) as usize) << 1 | ((i & sa) != 0) as usize;
            *amp *= d[idx];
        }
    });
}

fn num_workers_split(len: usize, workers: usize) -> usize {
    if len < PAR_THRESHOLD {
        1
    } else {
        workers.max(1)
    }
}

/// Applies SWAP between local qubits `a` and `b`.
pub fn apply_swap(state: &mut [Complex64], a: u32, b: u32, workers: usize) {
    swap_index_bits(state, a, b, workers);
}

/// The permutation kernel behind layout remaps: exchanges index bits `a`
/// and `b` of the buffer, i.e. moves the amplitude at each index `i` to the
/// index with bits `a` and `b` transposed. As a unitary this *is* the SWAP
/// gate; the layout pass also uses it to swap a low buffer bit with the
/// chunk-selector bit of a gathered chunk pair (a high↔low remap fused with
/// the decode pass) and to permute bits inside a single chunk (low↔low).
pub fn swap_index_bits(state: &mut [Complex64], a: u32, b: u32, workers: usize) {
    let n = local_qubits(state.len());
    assert!(a < n && b < n && a != b, "bad qubit pair ({a},{b})");
    let (lo, hi) = (a.min(b), a.max(b));
    let block = 1usize << (hi + 1);
    let slo = 1usize << lo;
    let shi = 1usize << hi;
    let groups = block >> 2;
    par_block_chunks(state, block, workers, move |chunk| {
        for g in 0..groups {
            let base = bits::insert_two_zero_bits(g, lo, hi);
            chunk.swap(base | slo, base | shi);
        }
    });
}

/// Applies a multi-controlled single-qubit unitary: `u` hits local qubit
/// `target` wherever all bits of `control_mask` are set. The mask must not
/// include the target bit.
pub fn apply_mcu(
    state: &mut [Complex64],
    control_mask: usize,
    target: u32,
    u: &Mat2,
    workers: usize,
) {
    let n = local_qubits(state.len());
    assert!(target < n, "target {target} out of range");
    assert_eq!(
        control_mask & (1usize << target),
        0,
        "control mask overlaps target"
    );
    let half = 1usize << target;
    let block = half * 2;
    let u = *u;
    // Block-start index must be folded into the mask check: chunk-local
    // offsets see only the low bits, so compute global index via the chunk
    // base passed through par iteration. par_block_chunks loses the base, so
    // iterate manually here with a parallel outer loop when large.
    let blocks = state.len() / block;
    let run = move |state: &mut [Complex64], b0: usize, nb: usize| {
        for bi in 0..nb {
            let b = b0 + bi;
            let chunk = &mut state[bi * block..(bi + 1) * block];
            let base_idx = b * block;
            for off in 0..half {
                let i0 = base_idx + off;
                if i0 & control_mask == control_mask {
                    let (x, y) = u.apply(chunk[off], chunk[off + half]);
                    chunk[off] = x;
                    chunk[off + half] = y;
                }
            }
        }
    };
    if workers <= 1 || state.len() < PAR_THRESHOLD {
        run(state, 0, blocks);
        return;
    }
    let per = blocks.div_ceil(workers.min(blocks));
    crossbeam::thread::scope(|s| {
        let mut rest = state;
        let mut b0 = 0usize;
        while !rest.is_empty() {
            let nb = per.min(rest.len() / block);
            let (head, tail) = rest.split_at_mut(nb * block);
            let runref = &run;
            s.spawn(move |_| runref(head, b0, nb));
            b0 += nb;
            rest = tail;
        }
    })
    .expect("kernel worker panicked");
}

/// Applies any gate from the circuit IR, with the gate's qubit indices
/// interpreted as local indices into `state`. Dispatches to the fastest
/// kernel for the gate's structure.
pub fn apply_gate(state: &mut [Complex64], gate: &Gate, workers: usize) {
    use Gate::*;
    match gate {
        Z(q) => apply_diag1(state, *q, Complex64::ONE, -Complex64::ONE, workers),
        S(q) => apply_diag1(state, *q, Complex64::ONE, Complex64::I, workers),
        Sdg(q) => apply_diag1(state, *q, Complex64::ONE, -Complex64::I, workers),
        T(q) => apply_diag1(
            state,
            *q,
            Complex64::ONE,
            Complex64::cis(std::f64::consts::FRAC_PI_4),
            workers,
        ),
        Tdg(q) => apply_diag1(
            state,
            *q,
            Complex64::ONE,
            Complex64::cis(-std::f64::consts::FRAC_PI_4),
            workers,
        ),
        P(q, l) => apply_diag1(state, *q, Complex64::ONE, Complex64::cis(*l), workers),
        Rz(q, t) => apply_diag1(
            state,
            *q,
            Complex64::cis(-t / 2.0),
            Complex64::cis(t / 2.0),
            workers,
        ),
        Cz(a, b) => apply_diag2(
            state,
            *a,
            *b,
            [
                Complex64::ONE,
                Complex64::ONE,
                Complex64::ONE,
                -Complex64::ONE,
            ],
            workers,
        ),
        Cp(a, b, l) => apply_diag2(
            state,
            *a,
            *b,
            [
                Complex64::ONE,
                Complex64::ONE,
                Complex64::ONE,
                Complex64::cis(*l),
            ],
            workers,
        ),
        Rzz(a, b, t) => {
            let e_m = Complex64::cis(-t / 2.0);
            let e_p = Complex64::cis(t / 2.0);
            apply_diag2(state, *a, *b, [e_m, e_p, e_p, e_m], workers)
        }
        Swap(a, b) => apply_swap(state, *a, *b, workers),
        Cx(c, t) => apply_mcu(state, 1usize << c, *t, &mq_circuit::gate::mat2_x(), workers),
        Cy(c, t) => apply_mcu(state, 1usize << c, *t, &mq_circuit::gate::mat2_y(), workers),
        Mcu {
            controls,
            target,
            u,
        } => {
            let mask: usize = controls.iter().map(|&c| 1usize << c).sum();
            apply_mcu(state, mask, *target, u, workers)
        }
        U2q(a, b, m) => apply_mat4(state, *a, *b, m, workers),
        g => {
            let m = g
                .mat2()
                .expect("all remaining gates are single-qubit with a mat2");
            let q = g.qubits()[0];
            apply_mat2(state, q, &m, workers)
        }
    }
}

/// Default tile width for [`apply_all`]: 2^15 amplitudes = 512 KiB of
/// `Complex64` — sized so one tile plus scratch stays L2-resident.
pub const DEFAULT_TILE_AMPS: usize = 1 << 15;

/// Maximum distinct qubits a fused diagonal run may span; bounds the
/// phase-table size at `2^DIAG_MAX_BITS` entries (16 KiB).
const DIAG_MAX_BITS: usize = 10;

/// Accounting from one [`apply_all`] sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApplyAllStats {
    /// Gates applied.
    pub gates: usize,
    /// Full passes over the amplitude buffer actually made (one per
    /// tiled super-run plus one per global-fallback gate).
    pub passes: usize,
}

impl ApplyAllStats {
    /// Buffer passes avoided relative to the one-pass-per-gate baseline.
    pub fn passes_saved(&self) -> usize {
        self.gates.saturating_sub(self.passes)
    }
}

/// One fusable slice of the gate list, classified by how it touches a tile.
enum Seg {
    /// Consecutive diagonal gates folded into one phase table over their
    /// union support (any qubit height — diagonals are elementwise). The
    /// table is filled once per segment before the tiled sweep.
    Diag {
        gates: Vec<Gate>,
        support: Vec<u32>,
        table: Vec<Complex64>,
    },
    /// Consecutive X/SWAP gates with all qubits inside the tile, composed
    /// into one index permutation `i -> pi(i) ^ xor_mask`.
    Perm {
        source_of: Vec<u32>,
        xor_mask: usize,
        gates: usize,
    },
    /// Other gates whose qubits all fit inside the tile; applied in order
    /// tile-by-tile.
    Local(Vec<Gate>),
    /// A gate pairing amplitudes across tiles; falls back to the global
    /// per-gate kernel.
    Global(Gate),
}

/// Sorted union of `support` and the gate's qubits.
fn merged_support(support: &[u32], gate: &Gate) -> Vec<u32> {
    let mut s = support.to_vec();
    for q in gate.qubits() {
        if let Err(pos) = s.binary_search(&q) {
            s.insert(pos, q);
        }
    }
    s
}

/// Diagonal factor a gate contributes at (global) amplitude index `idx`.
fn diag_factor(gate: &Gate, idx: usize) -> Complex64 {
    if let Gate::Mcu {
        controls,
        target,
        u,
    } = gate
    {
        if controls.iter().all(|&c| idx >> c & 1 == 1) {
            return if idx >> target & 1 == 1 {
                u.0[3]
            } else {
                u.0[0]
            };
        }
        return Complex64::ONE;
    }
    if let Some(m) = gate.mat2() {
        let q = gate.qubits()[0];
        return if idx >> q & 1 == 1 { m.0[3] } else { m.0[0] };
    }
    let m = gate.mat4().expect("diagonal gate has mat2, mat4 or is Mcu");
    let qs = gate.qubits();
    let k = ((idx >> qs[1] & 1) << 1) | (idx >> qs[0] & 1);
    m.0[k * 4 + k]
}

/// Splits the gate list into fusable segments for a tile of `2^tile_bits`
/// amplitudes.
fn segment_gates(gates: &[Gate], tile_bits: u32) -> Vec<Seg> {
    let mut segs: Vec<Seg> = Vec::new();
    for g in gates {
        let tile_local = g.max_qubit() < tile_bits;
        if g.is_diagonal() {
            if let Some(Seg::Diag { gates, support, .. }) = segs.last_mut() {
                let merged = merged_support(support, g);
                if merged.len() <= DIAG_MAX_BITS {
                    *support = merged;
                    gates.push(g.clone());
                    continue;
                }
            }
            segs.push(Seg::Diag {
                support: merged_support(&[], g),
                gates: vec![g.clone()],
                table: Vec::new(),
            });
        } else if tile_local && matches!(g, Gate::X(_) | Gate::Swap(_, _)) {
            if !matches!(segs.last(), Some(Seg::Perm { .. })) {
                segs.push(Seg::Perm {
                    source_of: (0..tile_bits).collect(),
                    xor_mask: 0,
                    gates: 0,
                });
            }
            let Some(Seg::Perm {
                source_of,
                xor_mask,
                gates,
            }) = segs.last_mut()
            else {
                unreachable!()
            };
            // The composite map is `i -> pi(i) ^ mask` with `pi` defined by
            // `source_of` (bit b of `pi(i)` is bit `source_of[b]` of `i`).
            // Appending gate sigma updates the map to `i -> prev(sigma(i))`.
            match g {
                Gate::X(q) => {
                    // pi(i ^ x) = pi(i) ^ pi(x): fold pi(x) into the mask.
                    for (b, &src) in source_of.iter().enumerate() {
                        if src == *q {
                            *xor_mask ^= 1usize << b;
                        }
                    }
                }
                Gate::Swap(a, b) => {
                    for src in source_of.iter_mut() {
                        if *src == *a {
                            *src = *b;
                        } else if *src == *b {
                            *src = *a;
                        }
                    }
                }
                _ => unreachable!(),
            }
            *gates += 1;
        } else if tile_local {
            if let Some(Seg::Local(gates)) = segs.last_mut() {
                gates.push(g.clone());
            } else {
                segs.push(Seg::Local(vec![g.clone()]));
            }
        } else {
            segs.push(Seg::Global(g.clone()));
        }
    }
    for seg in &mut segs {
        if let Seg::Diag {
            gates,
            support,
            table,
        } = seg
        {
            *table = diag_table(gates, support);
        }
    }
    segs
}

/// Builds the phase table for a diagonal run: entry `c` is the product of
/// every gate's factor at the index formed by scattering `c`'s bits onto
/// the support qubits.
fn diag_table(gates: &[Gate], support: &[u32]) -> Vec<Complex64> {
    let mut table = vec![Complex64::ONE; 1 << support.len()];
    for (c, slot) in table.iter_mut().enumerate() {
        let mut idx = 0usize;
        for (j, &q) in support.iter().enumerate() {
            idx |= (c >> j & 1) << q;
        }
        for g in gates {
            *slot *= diag_factor(g, idx);
        }
    }
    table
}

/// Runs `f(tile_base, tile, scratch)` over aligned `tile`-sized pieces of
/// `state`, splitting whole tiles across up to `workers` scoped threads —
/// the one thread scope a fused super-run pays per stage. `scratch` is a
/// per-worker buffer of `tile` amplitudes, allocated only when requested.
fn par_tiles<F>(state: &mut [Complex64], tile: usize, workers: usize, scratch: bool, f: F)
where
    F: Fn(usize, &mut [Complex64], &mut [Complex64]) + Sync,
{
    debug_assert_eq!(state.len() % tile, 0);
    let ntiles = state.len() / tile;
    let workers = workers.max(1).min(ntiles);
    let scratch_len = if scratch { tile } else { 0 };
    if workers == 1 || state.len() < PAR_THRESHOLD {
        let mut scratch = vec![Complex64::ZERO; scratch_len];
        for (t, chunk) in state.chunks_exact_mut(tile).enumerate() {
            f(t * tile, chunk, &mut scratch);
        }
        return;
    }
    let per = ntiles.div_ceil(workers) * tile;
    crossbeam::thread::scope(|s| {
        let mut rest = state;
        let mut base = 0usize;
        while !rest.is_empty() {
            let take = per.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let fref = &f;
            s.spawn(move |_| {
                let mut scratch = vec![Complex64::ZERO; scratch_len];
                for (t, chunk) in head.chunks_exact_mut(tile).enumerate() {
                    fref(base + t * tile, chunk, &mut scratch);
                }
            });
            base += take;
            rest = tail;
        }
    })
    .expect("kernel worker panicked");
}

/// Applies one segment to one tile (`base` = the tile's first global
/// amplitude index).
fn apply_seg_to_tile(seg: &Seg, base: usize, tile: &mut [Complex64], scratch: &mut [Complex64]) {
    match seg {
        Seg::Diag { support, table, .. } => {
            for (k, amp) in tile.iter_mut().enumerate() {
                let idx = base + k;
                let mut c = 0usize;
                for (j, &q) in support.iter().enumerate() {
                    c |= (idx >> q & 1) << j;
                }
                *amp *= table[c];
            }
        }
        Seg::Perm {
            source_of,
            xor_mask,
            ..
        } => {
            let identity = source_of.iter().enumerate().all(|(b, &s)| s == b as u32);
            if identity {
                // Pure X run: pair-swap in place, no scratch traffic.
                if *xor_mask != 0 {
                    for i in 0..tile.len() {
                        let j = i ^ *xor_mask;
                        if i < j {
                            tile.swap(i, j);
                        }
                    }
                }
            } else {
                for (i, slot) in scratch.iter_mut().enumerate() {
                    let mut src = 0usize;
                    for (b, &s) in source_of.iter().enumerate() {
                        src |= (i >> s & 1) << b;
                    }
                    *slot = tile[src ^ *xor_mask];
                }
                tile.copy_from_slice(scratch);
            }
        }
        Seg::Local(gates) => {
            for g in gates {
                apply_gate(tile, g, 1);
            }
        }
        Seg::Global(_) => unreachable!("global segments never reach a tile"),
    }
}

/// Applies every gate of a stage in order with cache blocking: the buffer
/// is tiled into L2-sized blocks and each maximal run of tile-compatible
/// segments (diagonal runs, X/SWAP permutations, tile-local gates) is
/// applied tile-by-tile in **one** parallel sweep, so the run costs one
/// pass over the amplitudes instead of one per gate. Gates pairing
/// amplitudes across tiles fall back to the global per-gate kernels.
pub fn apply_all(state: &mut [Complex64], gates: &[Gate], workers: usize) -> ApplyAllStats {
    apply_all_tiled(state, gates, workers, DEFAULT_TILE_AMPS)
}

/// [`apply_all`] with an explicit tile width (clamped to the buffer).
pub fn apply_all_tiled(
    state: &mut [Complex64],
    gates: &[Gate],
    workers: usize,
    tile_amps: usize,
) -> ApplyAllStats {
    let mut stats = ApplyAllStats {
        gates: gates.len(),
        passes: 0,
    };
    if gates.is_empty() || state.is_empty() {
        return stats;
    }
    let tile = tile_amps.max(1).next_power_of_two().min(state.len());
    let tile_bits = tile.trailing_zeros();
    let segs = segment_gates(gates, tile_bits);

    // Group maximal runs of tile-compatible segments into super-runs: one
    // thread scope and one buffer pass each.
    let mut i = 0;
    while i < segs.len() {
        match &segs[i] {
            Seg::Global(g) => {
                apply_gate(state, g, workers);
                stats.passes += 1;
                i += 1;
            }
            _ => {
                let mut j = i;
                while j < segs.len() && !matches!(segs[j], Seg::Global(_)) {
                    j += 1;
                }
                let run = &segs[i..j];
                let needs_scratch = run.iter().any(|s| {
                    matches!(s, Seg::Perm { source_of, .. }
                        if source_of.iter().enumerate().any(|(b, &q)| q != b as u32))
                });
                par_tiles(
                    state,
                    tile,
                    workers,
                    needs_scratch,
                    |base, tile, scratch| {
                        for seg in run {
                            apply_seg_to_tile(seg, base, tile, scratch);
                        }
                    },
                );
                stats.passes += 1;
                i = j;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_circuit::gate::{mat2_h, mat2_x};
    use mq_circuit::library;
    use mq_circuit::unitary::run_dense;
    use mq_num::complex::c64;
    use mq_num::metrics::max_amp_err;

    fn basis(n: u32, idx: usize) -> Vec<Complex64> {
        let mut v = vec![Complex64::ZERO; 1 << n];
        v[idx] = Complex64::ONE;
        v
    }

    /// Oracle check: every kernel result must match the naive reference.
    fn check_gate_against_oracle(n: u32, gate: &Gate, workers: usize) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let mut state: Vec<Complex64> = (0..1usize << n)
            .map(|_| c64(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let mut reference = state.clone();
        apply_gate(&mut state, gate, workers);
        mq_circuit::unitary::apply_gate_dense(n, &mut reference, gate);
        assert!(
            max_amp_err(&state, &reference) < 1e-12,
            "kernel disagrees with oracle for {gate} (workers={workers})"
        );
    }

    #[test]
    fn every_gate_kind_matches_oracle() {
        let gates = vec![
            Gate::H(0),
            Gate::H(3),
            Gate::X(2),
            Gate::Y(1),
            Gate::Z(3),
            Gate::S(0),
            Gate::T(2),
            Gate::Sx(1),
            Gate::Rx(0, 0.37),
            Gate::Ry(3, -1.2),
            Gate::Rz(2, 2.2),
            Gate::P(1, 0.9),
            Gate::U3(0, 0.3, 0.5, 0.7),
            Gate::Cx(0, 3),
            Gate::Cx(3, 0),
            Gate::Cy(1, 2),
            Gate::Cz(0, 2),
            Gate::Cp(2, 3, 0.4),
            Gate::Swap(0, 3),
            Gate::Swap(2, 1),
            Gate::Rzz(1, 3, 0.8),
            Gate::ccx(0, 1, 2),
            Gate::ccx(2, 3, 0),
            Gate::mcz(&[0, 1, 2], 3),
            Gate::mcx(&[3], 1),
            Gate::U2q(1, 3, Mat4::kron(&mat2_h(), &mat2_x())),
            Gate::U2q(3, 1, Mat4::kron(&mat2_h(), &mat2_x())),
            Gate::U1q(2, mat2_h()),
        ];
        for g in &gates {
            for workers in [1usize, 3] {
                check_gate_against_oracle(4, g, workers);
            }
        }
    }

    #[test]
    fn parallel_kernels_match_serial_on_large_buffers() {
        // Large enough to cross PAR_THRESHOLD.
        let n = 16u32;
        let mut a: Vec<Complex64> = (0..1usize << n)
            .map(|i| c64((i as f64 * 0.001).sin(), (i as f64 * 0.002).cos()))
            .collect();
        let mut b = a.clone();
        for g in [
            Gate::H(15),
            Gate::Cx(0, 15),
            Gate::Swap(3, 14),
            Gate::Rzz(7, 12, 0.3),
            Gate::ccx(1, 14, 8),
        ] {
            apply_gate(&mut a, &g, 1);
            apply_gate(&mut b, &g, 4);
        }
        assert!(max_amp_err(&a, &b) < 1e-12);
    }

    #[test]
    fn h_on_basis_state() {
        let mut s = basis(1, 0);
        apply_mat2(&mut s, 0, &mat2_h(), 1);
        let r = std::f64::consts::FRAC_1_SQRT_2;
        assert!(s[0].approx_eq(c64(r, 0.0), 1e-12));
        assert!(s[1].approx_eq(c64(r, 0.0), 1e-12));
    }

    #[test]
    fn kernels_work_on_chunk_sized_buffers() {
        // The chunked engine applies kernels to small buffers; local qubit
        // indices address within the buffer regardless of global position.
        let mut chunk = basis(3, 0b010);
        apply_gate(&mut chunk, &Gate::X(0), 1);
        assert!(chunk[0b011].approx_eq(Complex64::ONE, 1e-12));
        apply_gate(&mut chunk, &Gate::Cx(0, 2), 1);
        assert!(chunk[0b111].approx_eq(Complex64::ONE, 1e-12));
    }

    #[test]
    fn whole_circuits_match_oracle() {
        for c in library::standard_suite(6) {
            let mut s = basis(6, 0);
            for g in c.gates() {
                apply_gate(&mut s, g, 2);
            }
            let want = run_dense(&c, 0);
            assert!(
                max_amp_err(&s, &want) < 1e-10,
                "{} diverged from oracle",
                c.name()
            );
        }
    }

    fn random_state(n: u32, seed: u64) -> Vec<Complex64> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        (0..1usize << n)
            .map(|_| c64(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect()
    }

    /// apply_all must match the sequential per-gate reference for any gate
    /// list, tile width and worker count.
    fn check_apply_all(n: u32, gates: &[Gate], tile_amps: usize, workers: usize) {
        let mut blocked = random_state(n, 7);
        let mut reference = blocked.clone();
        let stats = apply_all_tiled(&mut blocked, gates, workers, tile_amps);
        for g in gates {
            apply_gate(&mut reference, g, 1);
        }
        assert!(
            max_amp_err(&blocked, &reference) < 1e-12,
            "blocked apply diverged (tile={tile_amps}, workers={workers})"
        );
        assert_eq!(stats.gates, gates.len());
        assert!(stats.passes <= gates.len().max(1));
    }

    #[test]
    fn apply_all_matches_per_gate_reference() {
        let gates = vec![
            Gate::H(0),
            Gate::T(0),
            Gate::Cp(1, 2, 0.3),
            Gate::Rz(5, 0.9), // diagonal above small tiles
            Gate::X(1),
            Gate::Swap(0, 2),
            Gate::X(0),
            Gate::Cx(3, 1),
            Gate::H(5), // above 2^4 tiles: global fallback
            Gate::Rzz(0, 5, 0.4),
            Gate::ccx(0, 1, 2),
        ];
        for tile in [2usize, 16, 64, 1 << 15] {
            for workers in [1usize, 3] {
                check_apply_all(6, &gates, tile, workers);
            }
        }
    }

    #[test]
    fn apply_all_matches_on_library_circuits() {
        for c in library::standard_suite(6) {
            for tile in [8usize, 64, 1 << 15] {
                check_apply_all(6, c.gates(), tile, 2);
            }
        }
        let c = library::random_circuit(7, 12, 9);
        for tile in [16usize, 128] {
            check_apply_all(7, c.gates(), tile, 3);
        }
    }

    #[test]
    fn apply_all_permutation_runs_compose() {
        // Long X/SWAP-only runs exercise both the xor fast path and the
        // scratch bit-permutation path.
        let xs = vec![Gate::X(0), Gate::X(3), Gate::X(0), Gate::X(1)];
        check_apply_all(5, &xs, 8, 1);
        let mixed = vec![
            Gate::Swap(0, 2),
            Gate::X(1),
            Gate::Swap(1, 3),
            Gate::X(3),
            Gate::Swap(0, 1),
        ];
        for tile in [16usize, 32] {
            check_apply_all(5, &mixed, tile, 2);
        }
    }

    #[test]
    fn apply_all_counts_passes_saved() {
        // Five tile-local gates fuse into one sweep: 1 pass, 4 saved.
        let gates = vec![
            Gate::H(0),
            Gate::T(1),
            Gate::Cz(0, 1),
            Gate::X(2),
            Gate::H(1),
        ];
        let mut s = random_state(4, 3);
        let stats = apply_all(&mut s, &gates, 1);
        assert_eq!(stats.passes, 1);
        assert_eq!(stats.passes_saved(), 4);

        // A cross-tile gate splits the sweep and costs its own pass.
        let gates = vec![Gate::H(0), Gate::H(3), Gate::T(0)];
        let mut s = random_state(4, 3);
        let stats = apply_all_tiled(&mut s, &gates, 1, 4);
        assert_eq!(stats.passes, 3, "H(3) pairs across 2^2 tiles");
        assert_eq!(stats.passes_saved(), 0);

        // Diagonal gates above the tile width still fuse (elementwise).
        let gates = vec![Gate::Rz(3, 0.2), Gate::Cp(0, 3, 0.5), Gate::T(1)];
        let mut s = random_state(4, 3);
        let stats = apply_all_tiled(&mut s, &gates, 1, 4);
        assert_eq!(stats.passes, 1);
        assert_eq!(stats.passes_saved(), 2);
    }

    #[test]
    fn apply_all_empty_and_degenerate() {
        let mut s = random_state(3, 1);
        let before = s.clone();
        let stats = apply_all(&mut s, &[], 2);
        assert_eq!(stats, ApplyAllStats::default());
        assert!(max_amp_err(&s, &before) < 1e-15);
        // Single-amplitude buffer (0 local qubits): only scalars possible,
        // and an empty gate list must be a no-op.
        let mut one = vec![Complex64::ONE];
        assert_eq!(apply_all(&mut one, &[], 1).passes, 0);
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_qubit() {
        let mut s = basis(2, 0);
        apply_mat2(&mut s, 5, &mat2_h(), 1);
    }

    #[test]
    #[should_panic]
    fn rejects_control_overlapping_target() {
        let mut s = basis(2, 0);
        apply_mcu(&mut s, 0b01, 0, &mat2_x(), 1);
    }

    #[test]
    fn swap_index_bits_is_the_bit_transposition() {
        // The permutation semantics the layout remaps rely on: amplitude at
        // index i lands at i with bits (a, b) transposed.
        let n = 6u32;
        let (a, b) = (1u32, 4u32);
        let s0 = random_state(n, 9);
        for workers in [1usize, 4] {
            let mut s = s0.clone();
            swap_index_bits(&mut s, a, b, workers);
            for (i, amp) in s0.iter().enumerate() {
                let ba = (i >> a) & 1;
                let bb = (i >> b) & 1;
                let j = (i & !((1 << a) | (1 << b))) | (bb << a) | (ba << b);
                assert_eq!(s[j], *amp, "index {i} (workers={workers})");
            }
        }
    }

    #[test]
    fn swap_index_bits_matches_the_swap_gate_oracle() {
        check_gate_against_oracle(5, &Gate::Swap(0, 4), 1);
        check_gate_against_oracle(5, &Gate::Swap(2, 3), 2);
        // Self-inverse: applying twice is the identity.
        let mut s = random_state(5, 7);
        let before = s.clone();
        swap_index_bits(&mut s, 0, 3, 1);
        swap_index_bits(&mut s, 0, 3, 1);
        assert!(max_amp_err(&s, &before) < 1e-15);
    }

    use mq_circuit::matrix::Mat4;
}
