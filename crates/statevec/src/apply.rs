//! Gate kernels.
//!
//! Every kernel takes a `&mut [Complex64]` whose length is a power of two
//! and *local* qubit indices into that buffer. Running a gate on a full
//! dense state and running it on a decompressed MEMQSIM chunk are the same
//! call — only the buffer and the index mapping differ. This is the code
//! the paper would run inside its GPU kernels; here it doubles as the CPU
//! path and the simulated-device kernel body.

use mq_circuit::gate::Gate;
use mq_circuit::matrix::{Mat2, Mat4};
use mq_num::bits;
use mq_num::Complex64;

/// Minimum buffer length before kernels bother spawning worker threads.
const PAR_THRESHOLD: usize = 1 << 15;

#[inline]
fn local_qubits(len: usize) -> u32 {
    debug_assert!(len.is_power_of_two(), "buffer length must be 2^m");
    len.trailing_zeros()
}

/// Splits `state` into contiguous block-aligned pieces and runs `f` on each,
/// using up to `workers` scoped threads. `block` must divide `state.len()`.
fn par_block_chunks<F>(state: &mut [Complex64], block: usize, workers: usize, f: F)
where
    F: Fn(&mut [Complex64]) + Sync,
{
    debug_assert_eq!(state.len() % block, 0);
    let nblocks = state.len() / block;
    let workers = workers.max(1).min(nblocks);
    if workers == 1 || state.len() < PAR_THRESHOLD {
        for chunk in state.chunks_exact_mut(block) {
            f(chunk);
        }
        return;
    }
    let per = nblocks.div_ceil(workers) * block;
    crossbeam::thread::scope(|s| {
        let mut rest = state;
        while !rest.is_empty() {
            let take = per.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let fref = &f;
            s.spawn(move |_| {
                for chunk in head.chunks_exact_mut(block) {
                    fref(chunk);
                }
            });
            rest = tail;
        }
    })
    .expect("kernel worker panicked");
}

/// Applies a general single-qubit matrix to local qubit `q`.
pub fn apply_mat2(state: &mut [Complex64], q: u32, m: &Mat2, workers: usize) {
    let n = local_qubits(state.len());
    assert!(q < n, "qubit {q} out of range for 2^{n} buffer");
    let half = 1usize << q;
    let block = half * 2;
    let m = *m;
    par_block_chunks(state, block, workers, move |chunk| {
        let (lo, hi) = chunk.split_at_mut(half);
        for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
            let (x, y) = m.apply(*a, *b);
            *a = x;
            *b = y;
        }
    });
}

/// Applies a diagonal single-qubit gate `diag(d0, d1)` to local qubit `q`.
pub fn apply_diag1(state: &mut [Complex64], q: u32, d0: Complex64, d1: Complex64, workers: usize) {
    let n = local_qubits(state.len());
    assert!(q < n, "qubit {q} out of range for 2^{n} buffer");
    let half = 1usize << q;
    let block = half * 2;
    par_block_chunks(state, block, workers, move |chunk| {
        let (lo, hi) = chunk.split_at_mut(half);
        if d0 != Complex64::ONE {
            for a in lo.iter_mut() {
                *a *= d0;
            }
        }
        for b in hi.iter_mut() {
            *b *= d1;
        }
    });
}

/// Applies a general two-qubit matrix to local qubits `(qa, qb)` — the
/// matrix basis index is `(bit_b << 1) | bit_a`, matching
/// [`Gate::mat4`](mq_circuit::gate::Gate::mat4).
pub fn apply_mat4(state: &mut [Complex64], qa: u32, qb: u32, m: &Mat4, workers: usize) {
    let n = local_qubits(state.len());
    assert!(qa < n && qb < n && qa != qb, "bad qubit pair ({qa},{qb})");
    let (lo, hi) = (qa.min(qb), qa.max(qb));
    // Process blocks of size 2^(hi+1); within each block all four group
    // members are reachable, keeping the parallel split trivially disjoint.
    let block = 1usize << (hi + 1);
    let m = *m;
    let sa = 1usize << qa;
    let sb = 1usize << qb;
    let per_block_groups = block >> 2;
    par_block_chunks(state, block, workers, move |chunk| {
        for g in 0..per_block_groups {
            let base = bits::insert_two_zero_bits(g, lo, hi);
            let i00 = base;
            let i01 = base | sa;
            let i10 = base | sb;
            let i11 = base | sa | sb;
            let out = m.apply([chunk[i00], chunk[i01], chunk[i10], chunk[i11]]);
            chunk[i00] = out[0];
            chunk[i01] = out[1];
            chunk[i10] = out[2];
            chunk[i11] = out[3];
        }
    });
}

/// Applies a diagonal two-qubit gate with diagonal `d` (indexed
/// `(bit_b << 1) | bit_a`) to local qubits `(qa, qb)`.
pub fn apply_diag2(state: &mut [Complex64], qa: u32, qb: u32, d: [Complex64; 4], workers: usize) {
    let n = local_qubits(state.len());
    assert!(qa < n && qb < n && qa != qb, "bad qubit pair ({qa},{qb})");
    let sa = 1usize << qa;
    let sb = 1usize << qb;
    // Element-wise: factor depends only on the two bits.
    let split = num_workers_split(state.len(), workers);
    mq_num::parallel::par_chunks_mut(state, split, move |start, chunk| {
        for (k, amp) in chunk.iter_mut().enumerate() {
            let i = start + k;
            let idx = (((i & sb) != 0) as usize) << 1 | ((i & sa) != 0) as usize;
            *amp *= d[idx];
        }
    });
}

fn num_workers_split(len: usize, workers: usize) -> usize {
    if len < PAR_THRESHOLD {
        1
    } else {
        workers.max(1)
    }
}

/// Applies SWAP between local qubits `a` and `b`.
pub fn apply_swap(state: &mut [Complex64], a: u32, b: u32, workers: usize) {
    let n = local_qubits(state.len());
    assert!(a < n && b < n && a != b, "bad qubit pair ({a},{b})");
    let (lo, hi) = (a.min(b), a.max(b));
    let block = 1usize << (hi + 1);
    let slo = 1usize << lo;
    let shi = 1usize << hi;
    let groups = block >> 2;
    par_block_chunks(state, block, workers, move |chunk| {
        for g in 0..groups {
            let base = bits::insert_two_zero_bits(g, lo, hi);
            chunk.swap(base | slo, base | shi);
        }
    });
}

/// Applies a multi-controlled single-qubit unitary: `u` hits local qubit
/// `target` wherever all bits of `control_mask` are set. The mask must not
/// include the target bit.
pub fn apply_mcu(
    state: &mut [Complex64],
    control_mask: usize,
    target: u32,
    u: &Mat2,
    workers: usize,
) {
    let n = local_qubits(state.len());
    assert!(target < n, "target {target} out of range");
    assert_eq!(
        control_mask & (1usize << target),
        0,
        "control mask overlaps target"
    );
    let half = 1usize << target;
    let block = half * 2;
    let u = *u;
    // Block-start index must be folded into the mask check: chunk-local
    // offsets see only the low bits, so compute global index via the chunk
    // base passed through par iteration. par_block_chunks loses the base, so
    // iterate manually here with a parallel outer loop when large.
    let blocks = state.len() / block;
    let run = move |state: &mut [Complex64], b0: usize, nb: usize| {
        for bi in 0..nb {
            let b = b0 + bi;
            let chunk = &mut state[bi * block..(bi + 1) * block];
            let base_idx = b * block;
            for off in 0..half {
                let i0 = base_idx + off;
                if i0 & control_mask == control_mask {
                    let (x, y) = u.apply(chunk[off], chunk[off + half]);
                    chunk[off] = x;
                    chunk[off + half] = y;
                }
            }
        }
    };
    if workers <= 1 || state.len() < PAR_THRESHOLD {
        run(state, 0, blocks);
        return;
    }
    let per = blocks.div_ceil(workers.min(blocks));
    crossbeam::thread::scope(|s| {
        let mut rest = state;
        let mut b0 = 0usize;
        while !rest.is_empty() {
            let nb = per.min(rest.len() / block);
            let (head, tail) = rest.split_at_mut(nb * block);
            let runref = &run;
            s.spawn(move |_| runref(head, b0, nb));
            b0 += nb;
            rest = tail;
        }
    })
    .expect("kernel worker panicked");
}

/// Applies any gate from the circuit IR, with the gate's qubit indices
/// interpreted as local indices into `state`. Dispatches to the fastest
/// kernel for the gate's structure.
pub fn apply_gate(state: &mut [Complex64], gate: &Gate, workers: usize) {
    use Gate::*;
    match gate {
        Z(q) => apply_diag1(state, *q, Complex64::ONE, -Complex64::ONE, workers),
        S(q) => apply_diag1(state, *q, Complex64::ONE, Complex64::I, workers),
        Sdg(q) => apply_diag1(state, *q, Complex64::ONE, -Complex64::I, workers),
        T(q) => apply_diag1(
            state,
            *q,
            Complex64::ONE,
            Complex64::cis(std::f64::consts::FRAC_PI_4),
            workers,
        ),
        Tdg(q) => apply_diag1(
            state,
            *q,
            Complex64::ONE,
            Complex64::cis(-std::f64::consts::FRAC_PI_4),
            workers,
        ),
        P(q, l) => apply_diag1(state, *q, Complex64::ONE, Complex64::cis(*l), workers),
        Rz(q, t) => apply_diag1(
            state,
            *q,
            Complex64::cis(-t / 2.0),
            Complex64::cis(t / 2.0),
            workers,
        ),
        Cz(a, b) => apply_diag2(
            state,
            *a,
            *b,
            [
                Complex64::ONE,
                Complex64::ONE,
                Complex64::ONE,
                -Complex64::ONE,
            ],
            workers,
        ),
        Cp(a, b, l) => apply_diag2(
            state,
            *a,
            *b,
            [
                Complex64::ONE,
                Complex64::ONE,
                Complex64::ONE,
                Complex64::cis(*l),
            ],
            workers,
        ),
        Rzz(a, b, t) => {
            let e_m = Complex64::cis(-t / 2.0);
            let e_p = Complex64::cis(t / 2.0);
            apply_diag2(state, *a, *b, [e_m, e_p, e_p, e_m], workers)
        }
        Swap(a, b) => apply_swap(state, *a, *b, workers),
        Cx(c, t) => apply_mcu(state, 1usize << c, *t, &mq_circuit::gate::mat2_x(), workers),
        Cy(c, t) => apply_mcu(state, 1usize << c, *t, &mq_circuit::gate::mat2_y(), workers),
        Mcu {
            controls,
            target,
            u,
        } => {
            let mask: usize = controls.iter().map(|&c| 1usize << c).sum();
            apply_mcu(state, mask, *target, u, workers)
        }
        U2q(a, b, m) => apply_mat4(state, *a, *b, m, workers),
        g => {
            let m = g
                .mat2()
                .expect("all remaining gates are single-qubit with a mat2");
            let q = g.qubits()[0];
            apply_mat2(state, q, &m, workers)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_circuit::gate::{mat2_h, mat2_x};
    use mq_circuit::library;
    use mq_circuit::unitary::run_dense;
    use mq_num::complex::c64;
    use mq_num::metrics::max_amp_err;

    fn basis(n: u32, idx: usize) -> Vec<Complex64> {
        let mut v = vec![Complex64::ZERO; 1 << n];
        v[idx] = Complex64::ONE;
        v
    }

    /// Oracle check: every kernel result must match the naive reference.
    fn check_gate_against_oracle(n: u32, gate: &Gate, workers: usize) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let mut state: Vec<Complex64> = (0..1usize << n)
            .map(|_| c64(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let mut reference = state.clone();
        apply_gate(&mut state, gate, workers);
        mq_circuit::unitary::apply_gate_dense(n, &mut reference, gate);
        assert!(
            max_amp_err(&state, &reference) < 1e-12,
            "kernel disagrees with oracle for {gate} (workers={workers})"
        );
    }

    #[test]
    fn every_gate_kind_matches_oracle() {
        let gates = vec![
            Gate::H(0),
            Gate::H(3),
            Gate::X(2),
            Gate::Y(1),
            Gate::Z(3),
            Gate::S(0),
            Gate::T(2),
            Gate::Sx(1),
            Gate::Rx(0, 0.37),
            Gate::Ry(3, -1.2),
            Gate::Rz(2, 2.2),
            Gate::P(1, 0.9),
            Gate::U3(0, 0.3, 0.5, 0.7),
            Gate::Cx(0, 3),
            Gate::Cx(3, 0),
            Gate::Cy(1, 2),
            Gate::Cz(0, 2),
            Gate::Cp(2, 3, 0.4),
            Gate::Swap(0, 3),
            Gate::Swap(2, 1),
            Gate::Rzz(1, 3, 0.8),
            Gate::ccx(0, 1, 2),
            Gate::ccx(2, 3, 0),
            Gate::mcz(&[0, 1, 2], 3),
            Gate::mcx(&[3], 1),
            Gate::U2q(1, 3, Mat4::kron(&mat2_h(), &mat2_x())),
            Gate::U2q(3, 1, Mat4::kron(&mat2_h(), &mat2_x())),
            Gate::U1q(2, mat2_h()),
        ];
        for g in &gates {
            for workers in [1usize, 3] {
                check_gate_against_oracle(4, g, workers);
            }
        }
    }

    #[test]
    fn parallel_kernels_match_serial_on_large_buffers() {
        // Large enough to cross PAR_THRESHOLD.
        let n = 16u32;
        let mut a: Vec<Complex64> = (0..1usize << n)
            .map(|i| c64((i as f64 * 0.001).sin(), (i as f64 * 0.002).cos()))
            .collect();
        let mut b = a.clone();
        for g in [
            Gate::H(15),
            Gate::Cx(0, 15),
            Gate::Swap(3, 14),
            Gate::Rzz(7, 12, 0.3),
            Gate::ccx(1, 14, 8),
        ] {
            apply_gate(&mut a, &g, 1);
            apply_gate(&mut b, &g, 4);
        }
        assert!(max_amp_err(&a, &b) < 1e-12);
    }

    #[test]
    fn h_on_basis_state() {
        let mut s = basis(1, 0);
        apply_mat2(&mut s, 0, &mat2_h(), 1);
        let r = std::f64::consts::FRAC_1_SQRT_2;
        assert!(s[0].approx_eq(c64(r, 0.0), 1e-12));
        assert!(s[1].approx_eq(c64(r, 0.0), 1e-12));
    }

    #[test]
    fn kernels_work_on_chunk_sized_buffers() {
        // The chunked engine applies kernels to small buffers; local qubit
        // indices address within the buffer regardless of global position.
        let mut chunk = basis(3, 0b010);
        apply_gate(&mut chunk, &Gate::X(0), 1);
        assert!(chunk[0b011].approx_eq(Complex64::ONE, 1e-12));
        apply_gate(&mut chunk, &Gate::Cx(0, 2), 1);
        assert!(chunk[0b111].approx_eq(Complex64::ONE, 1e-12));
    }

    #[test]
    fn whole_circuits_match_oracle() {
        for c in library::standard_suite(6) {
            let mut s = basis(6, 0);
            for g in c.gates() {
                apply_gate(&mut s, g, 2);
            }
            let want = run_dense(&c, 0);
            assert!(
                max_amp_err(&s, &want) < 1e-10,
                "{} diverged from oracle",
                c.name()
            );
        }
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_qubit() {
        let mut s = basis(2, 0);
        apply_mat2(&mut s, 5, &mat2_h(), 1);
    }

    #[test]
    #[should_panic]
    fn rejects_control_overlapping_target() {
        let mut s = basis(2, 0);
        apply_mcu(&mut s, 0b01, 0, &mat2_x(), 1);
    }

    use mq_circuit::matrix::Mat4;
}
