//! # mq-statevec — dense CPU state-vector simulator
//!
//! The baseline simulator (an SV-Sim-style dense backend) and, at the same
//! time, the *kernel library* of the whole workspace: every gate kernel in
//! [`apply`] operates on any power-of-two `&mut [Complex64]` buffer, so the
//! MEMQSIM chunked engines apply the exact same kernels to decompressed
//! chunk buffers (with remapped local qubit indices) that this crate applies
//! to whole dense states.
//!
//! * [`state`] — the dense [`State`] plus circuit execution.
//! * [`apply`] — gate kernels (pair, 4-group, diagonal and controlled fast
//!   paths; scoped-thread parallel versions).
//! * [`measure`] — Born-rule sampling and collapse.
//! * [`expval`] — Pauli-string expectation values.

//!
//! ## Example
//!
//! ```
//! use mq_statevec::{run_circuit, CpuConfig};
//! use mq_circuit::library;
//!
//! let state = run_circuit(&library::ghz(4), &CpuConfig::default());
//! assert!((state.probability(0) - 0.5).abs() < 1e-12);
//! assert!((state.probability(15) - 0.5).abs() < 1e-12);
//! ```

pub mod apply;
pub mod expval;
pub mod measure;
pub mod state;

pub use state::{run_circuit, CpuConfig, State};
