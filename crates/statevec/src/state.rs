//! The dense state vector and circuit execution.

use crate::apply::apply_gate;
use mq_circuit::fusion;
use mq_circuit::Circuit;
use mq_num::aligned::AlignedVec;
use mq_num::{bits, metrics, Complex64};

/// Execution configuration for the dense CPU backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuConfig {
    /// Worker threads for the gate kernels.
    pub workers: usize,
    /// Run the 1q-run fusion pass before execution.
    pub fuse: bool,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            workers: 1,
            fuse: false,
        }
    }
}

/// A dense `n`-qubit quantum state: `2^n` complex amplitudes, cache-line
/// aligned.
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    n_qubits: u32,
    amps: AlignedVec<Complex64>,
}

impl State {
    /// The all-zeros basis state `|0...0>`.
    pub fn zero(n_qubits: u32) -> State {
        State::basis(n_qubits, 0)
    }

    /// The computational basis state `|index>`.
    ///
    /// # Panics
    /// Panics if `index >= 2^n_qubits`.
    pub fn basis(n_qubits: u32, index: usize) -> State {
        let dim = mq_num::dim(n_qubits as usize);
        assert!(index < dim, "basis index out of range");
        let mut amps = AlignedVec::zeroed(dim);
        amps[index] = Complex64::ONE;
        State { n_qubits, amps }
    }

    /// Builds a state from raw amplitudes (length must be a power of two).
    ///
    /// # Panics
    /// Panics if the length is not a power of two.
    pub fn from_amplitudes(amps: &[Complex64]) -> State {
        assert!(
            bits::is_pow2(amps.len()),
            "amplitude count must be a power of two"
        );
        State {
            n_qubits: bits::floor_log2(amps.len()),
            amps: AlignedVec::from_slice(amps),
        }
    }

    /// Register width.
    #[inline]
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    /// Number of amplitudes (`2^n`).
    #[inline]
    pub fn dim(&self) -> usize {
        self.amps.len()
    }

    /// The amplitudes.
    #[inline]
    pub fn amplitudes(&self) -> &[Complex64] {
        self.amps.as_slice()
    }

    /// Mutable amplitudes (for backends writing in place).
    #[inline]
    pub fn amplitudes_mut(&mut self) -> &mut [Complex64] {
        self.amps.as_mut_slice()
    }

    /// Born probability of basis state `index`.
    pub fn probability(&self, index: usize) -> f64 {
        self.amps[index].norm_sqr()
    }

    /// The full probability distribution.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|z| z.norm_sqr()).collect()
    }

    /// Marginal probability that qubit `q` reads 1.
    pub fn probability_of_one(&self, q: u32) -> f64 {
        assert!(q < self.n_qubits);
        let mask = 1usize << q;
        self.amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i & mask != 0)
            .map(|(_, z)| z.norm_sqr())
            .sum()
    }

    /// L2 norm (1.0 for a physical state).
    pub fn norm(&self) -> f64 {
        metrics::l2_norm(self.amplitudes())
    }

    /// Rescales to unit norm. No-op on the zero vector.
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 && (n - 1.0).abs() > f64::EPSILON {
            let inv = 1.0 / n;
            for z in self.amps.iter_mut() {
                *z = *z * inv;
            }
        }
    }

    /// Fidelity against another state of the same width.
    pub fn fidelity(&self, other: &State) -> f64 {
        assert_eq!(self.n_qubits, other.n_qubits, "width mismatch");
        metrics::fidelity(self.amplitudes(), other.amplitudes())
    }

    /// Applies one gate in place.
    pub fn apply(&mut self, gate: &mq_circuit::Gate, workers: usize) {
        gate.validate(self.n_qubits).expect("invalid gate");
        apply_gate(self.amps.as_mut_slice(), gate, workers);
    }

    /// Runs a whole circuit in place.
    pub fn run(&mut self, circuit: &Circuit, cfg: &CpuConfig) {
        assert_eq!(circuit.n_qubits(), self.n_qubits, "width mismatch");
        if cfg.fuse {
            let fused = fusion::fuse_1q_runs(circuit);
            for g in fused.gates() {
                apply_gate(self.amps.as_mut_slice(), g, cfg.workers);
            }
        } else {
            for g in circuit.gates() {
                apply_gate(self.amps.as_mut_slice(), g, cfg.workers);
            }
        }
    }
}

/// Convenience: runs `circuit` from `|0...0>` and returns the final state.
pub fn run_circuit(circuit: &Circuit, cfg: &CpuConfig) -> State {
    let mut s = State::zero(circuit.n_qubits());
    s.run(circuit, cfg);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_circuit::library;
    use mq_circuit::unitary::run_dense;
    use mq_num::complex::c64;
    use mq_num::metrics::max_amp_err;

    #[test]
    fn zero_state_is_basis_zero() {
        let s = State::zero(3);
        assert_eq!(s.dim(), 8);
        assert_eq!(s.probability(0), 1.0);
        assert!((s.norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn basis_state_places_amplitude() {
        let s = State::basis(4, 9);
        assert_eq!(s.probability(9), 1.0);
        assert_eq!(s.probability(0), 0.0);
    }

    #[test]
    #[should_panic]
    fn basis_rejects_out_of_range() {
        let _ = State::basis(2, 4);
    }

    #[test]
    fn from_amplitudes_infers_width() {
        let amps = vec![c64(0.5, 0.0); 4];
        let s = State::from_amplitudes(&amps);
        assert_eq!(s.n_qubits(), 2);
        assert!((s.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn from_amplitudes_rejects_non_pow2() {
        let _ = State::from_amplitudes(&[Complex64::ZERO; 3]);
    }

    #[test]
    fn run_matches_oracle_for_suite() {
        for c in library::standard_suite(6) {
            for cfg in [
                CpuConfig {
                    workers: 1,
                    fuse: false,
                },
                CpuConfig {
                    workers: 2,
                    fuse: false,
                },
                CpuConfig {
                    workers: 1,
                    fuse: true,
                },
            ] {
                let s = run_circuit(&c, &cfg);
                let want = run_dense(&c, 0);
                assert!(
                    max_amp_err(s.amplitudes(), &want) < 1e-10,
                    "{} cfg={cfg:?}",
                    c.name()
                );
            }
        }
    }

    #[test]
    fn probability_of_one_on_bell() {
        let c = library::bell_pair(2, 0, 1);
        let s = run_circuit(&c, &CpuConfig::default());
        assert!((s.probability_of_one(0) - 0.5).abs() < 1e-12);
        assert!((s.probability_of_one(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalize_restores_unit_norm() {
        let mut s = State::zero(2);
        for z in s.amplitudes_mut() {
            *z = c64(0.5, 0.5);
        }
        assert!(s.norm() > 1.0);
        s.normalize();
        assert!((s.norm() - 1.0).abs() < 1e-12);
        // Zero vector stays zero.
        let mut z = State::zero(1);
        z.amplitudes_mut()[0] = Complex64::ZERO;
        z.normalize();
        assert_eq!(z.norm(), 0.0);
    }

    #[test]
    fn fidelity_tracks_equality() {
        let a = run_circuit(&library::ghz(4), &CpuConfig::default());
        let b = run_circuit(&library::ghz(4), &CpuConfig::default());
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
        let c = run_circuit(&library::w_state(4), &CpuConfig::default());
        assert!(a.fidelity(&c) < 0.9);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let s = run_circuit(&library::qft(5), &CpuConfig::default());
        let total: f64 = s.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn apply_validates_gate() {
        let mut s = State::zero(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.apply(&mq_circuit::Gate::H(7), 1);
        }));
        assert!(r.is_err());
    }
}
