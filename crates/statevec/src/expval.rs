//! Pauli-string expectation values.
//!
//! `<psi| P |psi>` for tensor products of Pauli operators — the observable
//! layer VQE/QAOA workloads report through.

use crate::state::State;
use mq_num::Complex64;

/// A single-qubit Pauli operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pauli {
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
}

/// A Pauli string: a list of `(qubit, Pauli)` factors (implicit identity
/// elsewhere). Qubits must be distinct.
#[derive(Debug, Clone, PartialEq)]
pub struct PauliString(pub Vec<(u32, Pauli)>);

impl PauliString {
    /// Parses `"ZZ"`-style dense notation applied to qubits `0..len`
    /// (character i acts on qubit i; `I` skips).
    ///
    /// # Panics
    /// Panics on characters outside `IXYZ`.
    pub fn parse(s: &str) -> PauliString {
        let mut v = Vec::new();
        for (i, ch) in s.chars().enumerate() {
            match ch {
                'I' | 'i' => {}
                'X' | 'x' => v.push((i as u32, Pauli::X)),
                'Y' | 'y' => v.push((i as u32, Pauli::Y)),
                'Z' | 'z' => v.push((i as u32, Pauli::Z)),
                _ => panic!("invalid Pauli character '{ch}'"),
            }
        }
        PauliString(v)
    }
}

/// Computes `<psi| P |psi>` for a Pauli string (always real).
pub fn expectation(state: &State, p: &PauliString) -> f64 {
    let n = state.n_qubits();
    for &(q, _) in &p.0 {
        assert!(q < n, "Pauli qubit {q} out of range");
    }
    let amps = state.amplitudes();
    // P|i> = phase * |j>: X flips the bit; Y flips with ±i; Z adds sign.
    let mut acc = Complex64::ZERO;
    for (i, &a) in amps.iter().enumerate() {
        if a == Complex64::ZERO {
            continue;
        }
        let mut j = i;
        let mut phase = Complex64::ONE;
        for &(q, op) in &p.0 {
            let bit = (i >> q) & 1 == 1;
            match op {
                Pauli::Z => {
                    if bit {
                        phase = -phase;
                    }
                }
                Pauli::X => {
                    j ^= 1usize << q;
                }
                Pauli::Y => {
                    j ^= 1usize << q;
                    // Y|0> = i|1>, Y|1> = -i|0>.
                    phase *= if bit {
                        Complex64::new(0.0, -1.0)
                    } else {
                        Complex64::I
                    };
                }
            }
        }
        // <psi|P|psi> = sum_i conj(amp[j]) * phase * amp[i]
        acc += amps[j].conj() * phase * a;
    }
    acc.re
}

/// Expectation of `Z_q`.
pub fn expect_z(state: &State, q: u32) -> f64 {
    expectation(state, &PauliString(vec![(q, Pauli::Z)]))
}

/// Expected MaxCut value of a measured assignment: for each edge,
/// `(1 - <Z_a Z_b>) / 2`.
pub fn expected_cut(state: &State, edges: &[(u32, u32)]) -> f64 {
    edges
        .iter()
        .map(|&(a, b)| {
            let zz = expectation(state, &PauliString(vec![(a, Pauli::Z), (b, Pauli::Z)]));
            (1.0 - zz) / 2.0
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{run_circuit, CpuConfig};
    use mq_circuit::{library, Circuit};

    const TOL: f64 = 1e-12;

    #[test]
    fn z_on_basis_states() {
        assert!((expect_z(&State::basis(2, 0b00), 0) - 1.0).abs() < TOL);
        assert!((expect_z(&State::basis(2, 0b01), 0) + 1.0).abs() < TOL);
        assert!((expect_z(&State::basis(2, 0b01), 1) - 1.0).abs() < TOL);
    }

    #[test]
    fn x_on_plus_state() {
        let mut c = Circuit::new(1);
        c.h(0);
        let s = run_circuit(&c, &CpuConfig::default());
        let x = expectation(&s, &PauliString::parse("X"));
        assert!((x - 1.0).abs() < TOL);
        let z = expectation(&s, &PauliString::parse("Z"));
        assert!(z.abs() < TOL);
    }

    #[test]
    fn y_on_y_eigenstate() {
        // |+i> = (|0> + i|1>)/sqrt(2) via H; S.
        let mut c = Circuit::new(1);
        c.h(0).s(0);
        let s = run_circuit(&c, &CpuConfig::default());
        let y = expectation(&s, &PauliString::parse("Y"));
        assert!((y - 1.0).abs() < TOL);
    }

    #[test]
    fn zz_correlations_on_ghz() {
        let s = run_circuit(&library::ghz(4), &CpuConfig::default());
        // Pairwise ZZ = +1; single Z = 0.
        let zz = expectation(&s, &PauliString(vec![(0, Pauli::Z), (3, Pauli::Z)]));
        assert!((zz - 1.0).abs() < TOL);
        assert!(expect_z(&s, 2).abs() < TOL);
        // XXXX stabilizer of GHZ4 = +1.
        let xxxx = expectation(&s, &PauliString::parse("XXXX"));
        assert!((xxxx - 1.0).abs() < 1e-10);
    }

    #[test]
    fn parse_accepts_identity_padding() {
        let p = PauliString::parse("IZIX");
        assert_eq!(p.0, vec![(1, Pauli::Z), (3, Pauli::X)]);
    }

    #[test]
    #[should_panic]
    fn parse_rejects_garbage() {
        let _ = PauliString::parse("ZQ");
    }

    #[test]
    fn expected_cut_on_computational_states() {
        let edges = library::ring_graph(4);
        // |0101>: perfect cut of the 4-ring = 4.
        let s = State::basis(4, 0b0101);
        assert!((expected_cut(&s, &edges) - 4.0).abs() < TOL);
        let s0 = State::basis(4, 0);
        assert!(expected_cut(&s0, &edges).abs() < TOL);
    }

    #[test]
    fn qaoa_beats_random_guessing_on_ring() {
        let n = 6;
        let edges = library::ring_graph(n);
        // Scan a small p=1 angle grid; the best point must clearly beat
        // random guessing (|E|/2 = 3).
        let mut best = 0.0f64;
        for gi in 1..8 {
            for bi in 1..8 {
                let gamma = gi as f64 * std::f64::consts::PI / 16.0;
                let beta = bi as f64 * std::f64::consts::PI / 16.0;
                let c = library::qaoa_maxcut(n, &edges, &[gamma], &[beta]);
                let s = run_circuit(&c, &CpuConfig::default());
                best = best.max(expected_cut(&s, &edges));
            }
        }
        assert!(best > 3.5, "best cut = {best}");
    }

    #[test]
    fn hermiticity_expectation_is_real_valued_consistent() {
        let s = run_circuit(&library::random_circuit(4, 6, 9), &CpuConfig::default());
        for p in ["XYZI", "ZZZZ", "XXII", "IYIY"] {
            let e = expectation(&s, &PauliString::parse(p));
            assert!(e.abs() <= 1.0 + 1e-10, "{p}: {e}");
        }
    }
}
