//! Born-rule measurement: full-register sampling, per-qubit measurement
//! with collapse, and multi-shot histogram sampling.

use crate::state::State;
use mq_num::Complex64;
use rand::Rng;

/// Samples one full-register outcome (a basis-state index) without
/// collapsing the state. Inverse-CDF over the probability distribution.
pub fn sample_once<R: Rng>(state: &State, rng: &mut R) -> usize {
    let r: f64 = rng.gen_range(0.0..1.0);
    let mut acc = 0.0;
    let amps = state.amplitudes();
    for (i, z) in amps.iter().enumerate() {
        acc += z.norm_sqr();
        if r < acc {
            return i;
        }
    }
    // Floating-point slack: return the last state with nonzero probability.
    amps.iter()
        .rposition(|z| z.norm_sqr() > 0.0)
        .unwrap_or(amps.len() - 1)
}

/// Samples `shots` outcomes, returning `(basis_state, count)` pairs sorted
/// by descending count (ties by index).
pub fn sample_counts<R: Rng>(state: &State, shots: usize, rng: &mut R) -> Vec<(usize, usize)> {
    use std::collections::HashMap;
    let mut counts: HashMap<usize, usize> = HashMap::new();
    for _ in 0..shots {
        *counts.entry(sample_once(state, rng)).or_insert(0) += 1;
    }
    let mut v: Vec<(usize, usize)> = counts.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v
}

/// Measures qubit `q`, collapsing the state. Returns the observed bit.
pub fn measure_qubit<R: Rng>(state: &mut State, q: u32, rng: &mut R) -> bool {
    let p1 = state.probability_of_one(q);
    let outcome = rng.gen_range(0.0..1.0) < p1;
    collapse(state, q, outcome);
    outcome
}

/// Projects qubit `q` onto `outcome` and renormalizes.
///
/// # Panics
/// Panics if the requested outcome has (numerically) zero probability.
pub fn collapse(state: &mut State, q: u32, outcome: bool) {
    let n = state.n_qubits();
    assert!(q < n, "qubit out of range");
    let mask = 1usize << q;
    let mut kept = 0.0f64;
    for (i, z) in state.amplitudes().iter().enumerate() {
        if ((i & mask) != 0) == outcome {
            kept += z.norm_sqr();
        }
    }
    assert!(
        kept > 1e-300,
        "collapse onto zero-probability outcome (p = {kept})"
    );
    let scale = 1.0 / kept.sqrt();
    for (i, z) in state.amplitudes_mut().iter_mut().enumerate() {
        if ((i & mask) != 0) == outcome {
            *z = *z * scale;
        } else {
            *z = Complex64::ZERO;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{run_circuit, CpuConfig};
    use mq_circuit::library;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn basis_state_samples_itself() {
        let s = State::basis(4, 11);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..32 {
            assert_eq!(sample_once(&s, &mut rng), 11);
        }
    }

    #[test]
    fn ghz_samples_only_extremes() {
        let s = run_circuit(&library::ghz(5), &CpuConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let counts = sample_counts(&s, 2000, &mut rng);
        assert!(counts.len() == 2);
        let states: Vec<usize> = counts.iter().map(|&(s, _)| s).collect();
        assert!(states.contains(&0));
        assert!(states.contains(&31));
        // Roughly balanced.
        let (a, b) = (counts[0].1 as f64, counts[1].1 as f64);
        assert!((a / (a + b) - 0.5).abs() < 0.1);
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let s = run_circuit(&library::qft(4), &CpuConfig::default());
        let a = sample_counts(&s, 100, &mut StdRng::seed_from_u64(7));
        let b = sample_counts(&s, 100, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn measure_collapses_bell_pair() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..16 {
            let mut s = run_circuit(&library::bell_pair(2, 0, 1), &CpuConfig::default());
            let m0 = measure_qubit(&mut s, 0, &mut rng);
            // Perfect correlation: qubit 1 now deterministic.
            let p1 = s.probability_of_one(1);
            if m0 {
                assert!((p1 - 1.0).abs() < 1e-10);
            } else {
                assert!(p1 < 1e-10);
            }
            assert!((s.norm() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn collapse_renormalizes() {
        let mut s = run_circuit(&library::w_state(3), &CpuConfig::default());
        collapse(&mut s, 0, false);
        assert!((s.norm() - 1.0).abs() < 1e-12);
        // After projecting qubit 0 to 0, remaining excitations on 1 and 2.
        assert!(s.probability(0b010) > 0.4);
        assert!(s.probability(0b100) > 0.4);
        assert!(s.probability(0b001) < 1e-12);
    }

    #[test]
    #[should_panic]
    fn collapse_on_impossible_outcome_panics() {
        let mut s = State::basis(2, 0);
        collapse(&mut s, 0, true); // qubit 0 is definitely 0
    }

    #[test]
    fn sample_frequencies_approximate_probabilities() {
        let s = run_circuit(&library::qft(3), &CpuConfig::default());
        let mut rng = StdRng::seed_from_u64(5);
        let counts = sample_counts(&s, 8000, &mut rng);
        // QFT|0> is uniform: every outcome near 1000.
        assert_eq!(counts.len(), 8);
        for &(_, c) in &counts {
            assert!((c as f64 - 1000.0).abs() < 150.0, "count {c}");
        }
    }
}
