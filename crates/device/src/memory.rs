//! Device memory: a capacity-limited arena with a first-fit free-list
//! allocator, plus pinned host buffers for DMA staging.
//!
//! The arena *is* the simulated DRAM: one host allocation of
//! `spec.memory_amps` amplitudes. Buffer handles are `(id, offset, len)`
//! triples validated on every access, so use-after-free and out-of-bounds
//! ranges surface as typed [`DeviceError`]s instead of silent corruption.

use crate::error::DeviceError;
use mq_num::Complex64;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// An owned handle to a device allocation. Obtained from `Device::alloc`
/// and released with `Device::free`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceBuffer {
    pub(crate) id: u64,
    /// Capacity in amplitudes.
    pub(crate) len: usize,
}

impl DeviceBuffer {
    /// Capacity in amplitudes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for zero-length buffers.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A pinned host staging buffer, shareable with stream workers (stands in
/// for page-locked memory registered with the driver).
#[derive(Debug, Clone)]
pub struct PinnedBuffer {
    data: Arc<Mutex<Vec<Complex64>>>,
}

impl PinnedBuffer {
    /// Allocates a zeroed pinned buffer of `amps` amplitudes.
    pub fn new(amps: usize) -> PinnedBuffer {
        PinnedBuffer {
            data: Arc::new(Mutex::new(vec![Complex64::ZERO; amps])),
        }
    }

    /// Creates a pinned buffer from existing amplitudes.
    pub fn from_slice(amps: &[Complex64]) -> PinnedBuffer {
        PinnedBuffer {
            data: Arc::new(Mutex::new(amps.to_vec())),
        }
    }

    /// Buffer length in amplitudes.
    pub fn len(&self) -> usize {
        self.data.lock().len()
    }

    /// True for zero-length buffers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs `f` with read access to the contents.
    pub fn read<R>(&self, f: impl FnOnce(&[Complex64]) -> R) -> R {
        f(&self.data.lock())
    }

    /// Runs `f` with write access to the contents.
    pub fn write<R>(&self, f: impl FnOnce(&mut [Complex64]) -> R) -> R {
        f(&mut self.data.lock())
    }

    /// Copies the contents out.
    pub fn to_vec(&self) -> Vec<Complex64> {
        self.data.lock().clone()
    }

    pub(crate) fn lock(&self) -> parking_lot::MutexGuard<'_, Vec<Complex64>> {
        self.data.lock()
    }
}

/// One live allocation inside the arena.
#[derive(Debug, Clone, Copy)]
struct Allocation {
    offset: usize,
    len: usize,
}

/// The arena allocator state.
///
/// The backing `storage` is grown lazily: a 16 GiB simulated card does not
/// pin 16 GiB of host RAM — only the high-water mark of *touched* device
/// memory is backed (zero-filled on first touch, like real DRAM after
/// `cudaMalloc` + `cudaMemset`).
#[derive(Debug)]
pub(crate) struct Arena {
    /// Simulated device DRAM (lazily grown to `capacity`).
    pub(crate) storage: Vec<Complex64>,
    /// Advertised capacity in amplitudes.
    capacity: usize,
    /// Live allocations by buffer id.
    live: HashMap<u64, Allocation>,
    /// Sorted free list of `(offset, len)` holes.
    free: Vec<(usize, usize)>,
    next_id: u64,
}

impl Arena {
    pub(crate) fn new(capacity_amps: usize) -> Arena {
        Arena {
            storage: Vec::new(),
            capacity: capacity_amps,
            live: HashMap::new(),
            free: vec![(0, capacity_amps)],
            next_id: 1,
        }
    }

    /// Total capacity in amplitudes.
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Ensures the backing store covers `..end` (zero-filled growth).
    fn ensure_backed(&mut self, end: usize) {
        if self.storage.len() < end {
            self.storage.resize(end, Complex64::ZERO);
        }
    }

    /// Amplitudes currently allocated.
    pub(crate) fn used(&self) -> usize {
        self.live.values().map(|a| a.len).sum()
    }

    /// Amplitudes free (possibly fragmented).
    pub(crate) fn available(&self) -> usize {
        self.free.iter().map(|&(_, l)| l).sum()
    }

    /// First-fit allocation.
    pub(crate) fn alloc(&mut self, amps: usize) -> Result<DeviceBuffer, DeviceError> {
        if amps == 0 {
            let id = self.next_id;
            self.next_id += 1;
            self.live.insert(id, Allocation { offset: 0, len: 0 });
            return Ok(DeviceBuffer { id, len: 0 });
        }
        let slot = self.free.iter().position(|&(_, l)| l >= amps);
        match slot {
            Some(k) => {
                let (off, l) = self.free[k];
                if l == amps {
                    self.free.remove(k);
                } else {
                    self.free[k] = (off + amps, l - amps);
                }
                let id = self.next_id;
                self.next_id += 1;
                self.live.insert(
                    id,
                    Allocation {
                        offset: off,
                        len: amps,
                    },
                );
                Ok(DeviceBuffer { id, len: amps })
            }
            None => Err(DeviceError::OutOfMemory {
                requested: amps,
                available: self.available(),
            }),
        }
    }

    /// Frees a buffer, coalescing adjacent holes.
    pub(crate) fn free(&mut self, buf: DeviceBuffer) -> Result<(), DeviceError> {
        let alloc = self
            .live
            .remove(&buf.id)
            .ok_or(DeviceError::InvalidBuffer)?;
        if alloc.len == 0 {
            return Ok(());
        }
        let pos = self
            .free
            .binary_search_by_key(&alloc.offset, |&(o, _)| o)
            .unwrap_err();
        self.free.insert(pos, (alloc.offset, alloc.len));
        // Coalesce around `pos`.
        if pos + 1 < self.free.len() {
            let (o, l) = self.free[pos];
            let (no, nl) = self.free[pos + 1];
            if o + l == no {
                self.free[pos] = (o, l + nl);
                self.free.remove(pos + 1);
            }
        }
        if pos > 0 {
            let (po, pl) = self.free[pos - 1];
            let (o, l) = self.free[pos];
            if po + pl == o {
                self.free[pos - 1] = (po, pl + l);
                self.free.remove(pos);
            }
        }
        Ok(())
    }

    /// Resolves a `(buffer, offset, len)` access to an arena range, growing
    /// the lazy backing store to cover it.
    pub(crate) fn resolve(
        &mut self,
        buf: DeviceBuffer,
        offset: usize,
        len: usize,
    ) -> Result<std::ops::Range<usize>, DeviceError> {
        let alloc = self.live.get(&buf.id).ok_or(DeviceError::InvalidBuffer)?;
        if offset.checked_add(len).is_none_or(|end| end > alloc.len) {
            return Err(DeviceError::RangeOutOfBounds {
                offset,
                len,
                buffer_len: alloc.len,
            });
        }
        let start = alloc.offset + offset;
        self.ensure_backed(start + len);
        Ok(start..start + len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_num::complex::c64;

    #[test]
    fn alloc_free_cycle() {
        let mut a = Arena::new(1000);
        assert_eq!(a.capacity(), 1000);
        let b1 = a.alloc(400).unwrap();
        let b2 = a.alloc(400).unwrap();
        assert_eq!(a.used(), 800);
        assert_eq!(a.available(), 200);
        assert!(a.alloc(300).is_err());
        a.free(b1).unwrap();
        assert_eq!(a.available(), 600);
        // Fragmented: 400 hole + 200 tail; 500 contiguous fails.
        assert!(matches!(a.alloc(500), Err(DeviceError::OutOfMemory { .. })));
        let b3 = a.alloc(400).unwrap();
        a.free(b2).unwrap();
        a.free(b3).unwrap();
        // Fully coalesced again.
        let big = a.alloc(1000).unwrap();
        assert_eq!(big.len(), 1000);
    }

    #[test]
    fn oom_reports_availability() {
        let mut a = Arena::new(100);
        let _b = a.alloc(60).unwrap();
        match a.alloc(50) {
            Err(DeviceError::OutOfMemory {
                requested,
                available,
            }) => {
                assert_eq!(requested, 50);
                assert_eq!(available, 40);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn double_free_is_invalid_buffer() {
        let mut a = Arena::new(100);
        let b = a.alloc(10).unwrap();
        a.free(b).unwrap();
        assert_eq!(a.free(b), Err(DeviceError::InvalidBuffer));
    }

    #[test]
    fn resolve_validates_ranges() {
        let mut a = Arena::new(100);
        let b = a.alloc(10).unwrap();
        assert!(a.resolve(b, 0, 10).is_ok());
        assert!(a.resolve(b, 5, 5).is_ok());
        assert!(matches!(
            a.resolve(b, 5, 6),
            Err(DeviceError::RangeOutOfBounds { .. })
        ));
        assert!(matches!(
            a.resolve(b, usize::MAX, 2),
            Err(DeviceError::RangeOutOfBounds { .. })
        ));
        let stale = b;
        a.free(b).unwrap();
        assert_eq!(a.resolve(stale, 0, 1), Err(DeviceError::InvalidBuffer));
    }

    #[test]
    fn zero_length_allocations() {
        let mut a = Arena::new(10);
        let z = a.alloc(0).unwrap();
        assert!(z.is_empty());
        assert_eq!(a.used(), 0);
        a.free(z).unwrap();
    }

    #[test]
    fn coalescing_merges_three_way() {
        let mut a = Arena::new(300);
        let b1 = a.alloc(100).unwrap();
        let b2 = a.alloc(100).unwrap();
        let b3 = a.alloc(100).unwrap();
        a.free(b1).unwrap();
        a.free(b3).unwrap();
        a.free(b2).unwrap(); // middle free must merge all three
        assert_eq!(a.free.len(), 1);
        assert_eq!(a.free[0], (0, 300));
    }

    #[test]
    fn pinned_buffer_read_write() {
        let p = PinnedBuffer::new(4);
        assert_eq!(p.len(), 4);
        p.write(|d| d[2] = c64(1.0, -1.0));
        assert_eq!(p.read(|d| d[2]), c64(1.0, -1.0));
        let v = p.to_vec();
        assert_eq!(v[2], c64(1.0, -1.0));
        let q = PinnedBuffer::from_slice(&v);
        assert_eq!(q.to_vec(), v);
    }

    #[test]
    fn pinned_buffer_is_shared() {
        let p = PinnedBuffer::new(1);
        let p2 = p.clone();
        p.write(|d| d[0] = c64(2.0, 0.0));
        assert_eq!(p2.read(|d| d[0]), c64(2.0, 0.0));
    }
}
