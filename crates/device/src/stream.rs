//! Command streams: the device execution engine.
//!
//! A [`Stream`] mirrors a CUDA stream: commands (copies, kernels, events)
//! are issued asynchronously from the host and executed in order by a
//! dedicated worker thread against the device arena. Each command is
//! charged a deterministic *modeled* duration from the [`DeviceSpec`]
//! alongside the real work it performs, so experiments report both a
//! reproducible simulated clock and actual wall time.
//!
//! Errors (stale buffer handles, range violations) are detected at
//! execution time and are *sticky*: subsequent commands are skipped and the
//! first error is returned from [`Stream::synchronize`].

use crate::error::DeviceError;
use crate::memory::{Arena, DeviceBuffer, PinnedBuffer};
use crate::model::DeviceSpec;
use crossbeam::channel::{unbounded, Receiver, Sender};
use mq_circuit::Gate;
use mq_compress::{compress_complex, decompress_complex, Codec};
use mq_num::Complex64;
use mq_telemetry::{Counter, Telemetry};
use parking_lot::{Condvar, Mutex, RwLock};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared device state.
#[derive(Debug)]
pub(crate) struct DeviceInner {
    pub(crate) spec: DeviceSpec,
    pub(crate) arena: Mutex<Arena>,
    /// Optional per-run instrumentation; stream workers count H2D/D2H
    /// traffic, kernel launches and scatter ops against it while attached.
    /// Read-locked on the per-command hot path; write-locked only on
    /// attach/detach.
    pub(crate) telemetry: RwLock<Option<Telemetry>>,
}

/// A simulated GPU.
#[derive(Debug, Clone)]
pub struct Device {
    pub(crate) inner: Arc<DeviceInner>,
}

impl Device {
    /// Creates a device with the given spec (allocates the simulated DRAM).
    pub fn new(spec: DeviceSpec) -> Device {
        let arena = Arena::new(spec.memory_amps);
        Device {
            inner: Arc::new(DeviceInner {
                spec,
                arena: Mutex::new(arena),
                telemetry: RwLock::new(None),
            }),
        }
    }

    /// The device spec.
    pub fn spec(&self) -> &DeviceSpec {
        &self.inner.spec
    }

    /// Attaches a telemetry handle: until [`Self::detach_telemetry`] is
    /// called, every command executed on any of this
    /// device's streams contributes to the run's `bytes_h2d` / `bytes_d2h` /
    /// `kernel_launches` / `scatter_ops` counters.
    pub fn attach_telemetry(&self, telemetry: Telemetry) {
        *self.inner.telemetry.write() = Some(telemetry);
    }

    /// Detaches the telemetry handle, if any.
    pub fn detach_telemetry(&self) {
        *self.inner.telemetry.write() = None;
    }

    /// Allocates `amps` amplitudes of device memory.
    pub fn alloc(&self, amps: usize) -> Result<DeviceBuffer, DeviceError> {
        self.inner.arena.lock().alloc(amps)
    }

    /// Frees a device buffer.
    pub fn free(&self, buf: DeviceBuffer) -> Result<(), DeviceError> {
        self.inner.arena.lock().free(buf)
    }

    /// Amplitudes currently allocated.
    pub fn used_amps(&self) -> usize {
        self.inner.arena.lock().used()
    }

    /// Amplitudes free.
    pub fn available_amps(&self) -> usize {
        self.inner.arena.lock().available()
    }

    /// Total capacity in amplitudes.
    pub fn capacity_amps(&self) -> usize {
        self.inner.arena.lock().capacity()
    }

    /// Reads back a device buffer synchronously (test/debug convenience —
    /// real transfers go through a stream).
    pub fn debug_read(&self, buf: DeviceBuffer) -> Result<Vec<Complex64>, DeviceError> {
        let mut arena = self.inner.arena.lock();
        let range = arena.resolve(buf, 0, buf.len())?;
        Ok(arena.storage[range].to_vec())
    }

    /// Creates a new command stream.
    pub fn create_stream(&self) -> Stream {
        Stream::spawn(self.inner.clone())
    }
}

/// Address mapping for scatter/gather kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScatterMap {
    /// `map(i) = dst_off + i`.
    Contiguous {
        /// Base offset.
        dst_off: usize,
    },
    /// `map(i) = start + i * stride`.
    Strided {
        /// First index.
        start: usize,
        /// Index step.
        stride: usize,
    },
}

impl ScatterMap {
    #[inline]
    fn index(&self, i: usize) -> usize {
        match *self {
            ScatterMap::Contiguous { dst_off } => dst_off + i,
            ScatterMap::Strided { start, stride } => start + i * stride,
        }
    }

    /// Largest index produced over `len` elements (None for len == 0).
    fn max_index(&self, len: usize) -> Option<usize> {
        if len == 0 {
            None
        } else {
            Some(self.index(len - 1))
        }
    }
}

/// Per-stream accounting, in both modeled and real time.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StreamStats {
    /// Total modeled busy time.
    pub modeled: Duration,
    /// Modeled time in H2D copies.
    pub modeled_h2d: Duration,
    /// Modeled time in D2H copies.
    pub modeled_d2h: Duration,
    /// Modeled time in gate kernels.
    pub modeled_kernel: Duration,
    /// Modeled time in scatter/gather kernels.
    pub modeled_scatter: Duration,
    /// Modeled time in device decode kernels (`DecodeChunk`).
    pub modeled_decode: Duration,
    /// Modeled time in device encode kernels (`EncodeChunk`).
    pub modeled_encode: Duration,
    /// Modeled idle time spent waiting on cross-stream events.
    pub modeled_wait: Duration,
    /// Real execution time of all commands.
    pub real: Duration,
    /// Commands executed.
    pub commands: usize,
    /// Bytes moved host-to-device.
    pub bytes_h2d: usize,
    /// Bytes moved device-to-host.
    pub bytes_d2h: usize,
    /// Subset of `bytes_h2d` that crossed the link as compressed payloads.
    pub bytes_h2d_compressed: usize,
    /// Subset of `bytes_d2h` that crossed the link as compressed payloads.
    pub bytes_d2h_compressed: usize,
}

/// A recorded event: the stream's clocks at the moment the event executed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventRecord {
    /// Stream modeled time at the event.
    pub modeled: Duration,
    /// Stream real busy time at the event.
    pub real: Duration,
}

/// A CUDA-event-like synchronization point.
#[derive(Clone)]
pub struct Event {
    inner: Arc<(Mutex<Option<EventRecord>>, Condvar)>,
}

impl Event {
    fn new() -> Event {
        Event {
            inner: Arc::new((Mutex::new(None), Condvar::new())),
        }
    }

    /// Blocks until the event has executed; returns the stream clocks.
    pub fn wait(&self) -> EventRecord {
        let (lock, cond) = &*self.inner;
        let mut guard = lock.lock();
        while guard.is_none() {
            cond.wait(&mut guard);
        }
        guard.expect("checked above")
    }

    /// Non-blocking query.
    pub fn query(&self) -> Option<EventRecord> {
        *self.inner.0.lock()
    }

    fn signal(&self, record: EventRecord) {
        let (lock, cond) = &*self.inner;
        *lock.lock() = Some(record);
        cond.notify_all();
    }
}

/// Handle to the payload an enqueued [`Stream::encode_chunk`] will produce.
///
/// The stream worker fills the cell when the encode command executes; pair
/// it with [`Stream::record_event`] (or `synchronize`) to know when the
/// payload is ready. Stays empty if the command was skipped by a sticky
/// error.
#[derive(Clone, Debug, Default)]
pub struct PayloadCell {
    inner: Arc<Mutex<Option<Vec<u8>>>>,
}

impl PayloadCell {
    /// Takes the payload out of the cell, leaving it empty.
    pub fn take(&self) -> Option<Vec<u8>> {
        self.inner.lock().take()
    }

    fn fill(&self, payload: Vec<u8>) {
        *self.inner.lock() = Some(payload);
    }
}

#[allow(clippy::large_enum_variant)] // commands are moved once, never stored
enum Command {
    CopyH2d {
        src: PinnedBuffer,
        src_off: usize,
        dst: DeviceBuffer,
        dst_off: usize,
        len: usize,
        per_element: bool,
    },
    CopyD2h {
        src: DeviceBuffer,
        src_off: usize,
        dst: PinnedBuffer,
        dst_off: usize,
        len: usize,
        per_element: bool,
    },
    Scatter {
        src: DeviceBuffer,
        src_off: usize,
        dst: DeviceBuffer,
        map: ScatterMap,
        len: usize,
    },
    Gather {
        src: DeviceBuffer,
        map: ScatterMap,
        dst: DeviceBuffer,
        dst_off: usize,
        len: usize,
    },
    RunGate {
        buf: DeviceBuffer,
        amps: usize,
        gate: Gate,
    },
    RunFusedGates {
        buf: DeviceBuffer,
        amps: usize,
        gates: Vec<Gate>,
    },
    DecodeChunk {
        payload: Vec<u8>,
        codec: Arc<dyn Codec>,
        dst: DeviceBuffer,
        dst_off: usize,
        amps: usize,
    },
    EncodeChunk {
        src: DeviceBuffer,
        src_off: usize,
        amps: usize,
        scalar: Complex64,
        codec: Arc<dyn Codec>,
        out: PayloadCell,
    },
    RemapChunks {
        pairs: Vec<(usize, usize)>,
    },
    RecordEvent(Event),
    WaitEvent(Event),
    Sync(Sender<Result<StreamStats, DeviceError>>),
    Shutdown,
}

/// An in-order asynchronous command queue backed by a worker thread.
pub struct Stream {
    tx: Sender<Command>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl Stream {
    fn spawn(device: Arc<DeviceInner>) -> Stream {
        let (tx, rx) = unbounded::<Command>();
        let worker = std::thread::Builder::new()
            .name("mq-device-stream".to_string())
            .spawn(move || stream_worker(device, rx))
            .expect("failed to spawn stream worker");
        Stream {
            tx,
            worker: Some(worker),
        }
    }

    fn send(&self, cmd: Command) {
        // A closed channel means the worker died; surfaced on synchronize.
        let _ = self.tx.send(cmd);
    }

    /// Enqueues a bulk host-to-device copy.
    pub fn h2d(
        &self,
        src: &PinnedBuffer,
        src_off: usize,
        dst: DeviceBuffer,
        dst_off: usize,
        len: usize,
    ) {
        self.send(Command::CopyH2d {
            src: src.clone(),
            src_off,
            dst,
            dst_off,
            len,
            per_element: false,
        });
    }

    /// Enqueues `len` *individual* async element copies (the paper's slow
    /// strategy): same data movement, but charged one call overhead per
    /// amplitude.
    pub fn h2d_per_element(
        &self,
        src: &PinnedBuffer,
        src_off: usize,
        dst: DeviceBuffer,
        dst_off: usize,
        len: usize,
    ) {
        self.send(Command::CopyH2d {
            src: src.clone(),
            src_off,
            dst,
            dst_off,
            len,
            per_element: true,
        });
    }

    /// Enqueues a bulk device-to-host copy.
    pub fn d2h(
        &self,
        src: DeviceBuffer,
        src_off: usize,
        dst: &PinnedBuffer,
        dst_off: usize,
        len: usize,
    ) {
        self.send(Command::CopyD2h {
            src,
            src_off,
            dst: dst.clone(),
            dst_off,
            len,
            per_element: false,
        });
    }

    /// Per-element variant of [`Stream::d2h`].
    pub fn d2h_per_element(
        &self,
        src: DeviceBuffer,
        src_off: usize,
        dst: &PinnedBuffer,
        dst_off: usize,
        len: usize,
    ) {
        self.send(Command::CopyD2h {
            src,
            src_off,
            dst: dst.clone(),
            dst_off,
            len,
            per_element: true,
        });
    }

    /// Enqueues a scatter kernel: `dst[map(i)] = src[src_off + i]`.
    pub fn scatter(
        &self,
        src: DeviceBuffer,
        src_off: usize,
        dst: DeviceBuffer,
        map: ScatterMap,
        len: usize,
    ) {
        self.send(Command::Scatter {
            src,
            src_off,
            dst,
            map,
            len,
        });
    }

    /// Enqueues a gather kernel: `dst[dst_off + i] = src[map(i)]`.
    pub fn gather(
        &self,
        src: DeviceBuffer,
        map: ScatterMap,
        dst: DeviceBuffer,
        dst_off: usize,
        len: usize,
    ) {
        self.send(Command::Gather {
            src,
            map,
            dst,
            dst_off,
            len,
        });
    }

    /// Enqueues a gate kernel over the whole buffer (the gate's qubit
    /// indices address within the buffer).
    pub fn run_gate(&self, buf: DeviceBuffer, gate: Gate) {
        let amps = buf.len();
        self.send(Command::RunGate { buf, amps, gate });
    }

    /// Enqueues a gate kernel over the leading `amps` amplitudes of the
    /// buffer (`amps` must be a power of two). Used when a working buffer
    /// is larger than the live group staged in it.
    pub fn run_gate_region(&self, buf: DeviceBuffer, amps: usize, gate: Gate) {
        self.send(Command::RunGate { buf, amps, gate });
    }

    /// Enqueues one *fused* kernel applying `gates` in order over the
    /// leading `amps` amplitudes of the buffer: a single launch (one launch
    /// overhead charged, one `kernel_launches` tick) whose body runs the
    /// cache-blocked [`apply_all`](mq_statevec::apply::apply_all) sweep.
    /// Amplitude work is still charged per gate. No-op for an empty list.
    pub fn run_fused_gates_region(&self, buf: DeviceBuffer, amps: usize, gates: Vec<Gate>) {
        if gates.is_empty() {
            return;
        }
        self.send(Command::RunFusedGates { buf, amps, gates });
    }

    /// Enqueues a compressed upload: ships `payload` over the H2D link and
    /// decodes it on the device into `amps` amplitudes at
    /// `dst[dst_off..dst_off + amps]`.
    ///
    /// The link is charged for the *compressed* bytes only (that is the
    /// whole point of the strategy); the decode pays the staged codec-kernel
    /// model ([`DeviceSpec::decode_kernel_time`]) on this stream's clock.
    pub fn decode_chunk(
        &self,
        payload: Vec<u8>,
        codec: &Arc<dyn Codec>,
        dst: DeviceBuffer,
        dst_off: usize,
        amps: usize,
    ) {
        self.send(Command::DecodeChunk {
            payload,
            codec: Arc::clone(codec),
            dst,
            dst_off,
            amps,
        });
    }

    /// Enqueues the write-back mirror of [`Stream::decode_chunk`]: scales
    /// `amps` amplitudes at `src[src_off..]` by `scalar`, encodes them with
    /// `codec` on the device ([`DeviceSpec::encode_kernel_time`]) and ships
    /// the compressed payload over the D2H link into the returned cell.
    ///
    /// The payload is byte-identical to a host-side
    /// `compress_complex(codec, scaled_amps)`, so it can go straight back
    /// into a compressed chunk store with no further codec round trip.
    pub fn encode_chunk(
        &self,
        src: DeviceBuffer,
        src_off: usize,
        amps: usize,
        scalar: Complex64,
        codec: &Arc<dyn Codec>,
    ) -> PayloadCell {
        let out = PayloadCell::default();
        self.send(Command::EncodeChunk {
            src,
            src_off,
            amps,
            scalar,
            codec: Arc::clone(codec),
            out: out.clone(),
        });
        out
    }

    /// Enqueues a chunk-identity remap notice: the host permuted the chunk
    /// space by the given pairwise exchanges (a layout remap transition),
    /// so any chunk-keyed affinity this device's pipelines assumed is now
    /// stale. The command moves no arena data — staging buffers are
    /// reloaded per group — but the modeled clock is charged one
    /// scatter-shaped pass over the exchanged pairs, keeping fleet
    /// makespans honest about re-sharding at transition boundaries. No-op
    /// for an empty list.
    pub fn remap_chunks(&self, pairs: Vec<(usize, usize)>) {
        if pairs.is_empty() {
            return;
        }
        self.send(Command::RemapChunks { pairs });
    }

    /// Enqueues an event; it signals when all prior commands have executed.
    pub fn record_event(&self) -> Event {
        let e = Event::new();
        self.send(Command::RecordEvent(e.clone()));
        e
    }

    /// Makes this stream wait for an event recorded on *another* stream
    /// (cudaStreamWaitEvent): execution blocks until the event has fired,
    /// and the modeled clock advances to at least the event's modeled time
    /// (streams share the device epoch).
    pub fn wait_event(&self, event: &Event) {
        self.send(Command::WaitEvent(event.clone()));
    }

    /// Blocks until all enqueued commands have executed. Returns cumulative
    /// stats, or the first execution error (sticky).
    pub fn synchronize(&self) -> Result<StreamStats, DeviceError> {
        let (tx, rx) = unbounded();
        self.send(Command::Sync(tx));
        rx.recv().map_err(|_| DeviceError::StreamClosed)?
    }
}

impl Drop for Stream {
    fn drop(&mut self) {
        let _ = self.tx.send(Command::Shutdown);
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

fn stream_worker(device: Arc<DeviceInner>, rx: Receiver<Command>) {
    let mut stats = StreamStats::default();
    let mut error: Option<DeviceError> = None;
    let spec = device.spec.clone();
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Command::Sync(reply) => {
                let _ = reply.send(match &error {
                    Some(e) => Err(e.clone()),
                    None => Ok(stats),
                });
                continue;
            }
            Command::RecordEvent(e) => {
                e.signal(EventRecord {
                    modeled: stats.modeled,
                    real: stats.real,
                });
                continue;
            }
            Command::WaitEvent(e) => {
                // Block for real, then advance the modeled clock to the
                // event's modeled time (cross-stream dependency edge).
                let record = e.wait();
                if record.modeled > stats.modeled {
                    stats.modeled_wait += record.modeled - stats.modeled;
                    stats.modeled = record.modeled;
                }
                continue;
            }
            Command::Shutdown => break,
            cmd => {
                if error.is_some() {
                    continue; // sticky error: skip the rest
                }
                let start = Instant::now();
                let result = execute(&device, &spec, cmd, &mut stats);
                stats.real += start.elapsed();
                stats.commands += 1;
                if let Err(e) = result {
                    error = Some(e);
                }
            }
        }
    }
}

fn execute(
    device: &DeviceInner,
    spec: &DeviceSpec,
    cmd: Command,
    stats: &mut StreamStats,
) -> Result<(), DeviceError> {
    match cmd {
        Command::CopyH2d {
            src,
            src_off,
            dst,
            dst_off,
            len,
            per_element,
        } => {
            let mut arena = device.arena.lock();
            let range = arena.resolve(dst, dst_off, len)?;
            let host = src.lock();
            if src_off + len > host.len() {
                return Err(DeviceError::RangeOutOfBounds {
                    offset: src_off,
                    len,
                    buffer_len: host.len(),
                });
            }
            arena.storage[range].copy_from_slice(&host[src_off..src_off + len]);
            let t = if per_element {
                spec.per_element_copy_time(len, true)
            } else {
                spec.bulk_copy_time(len, true)
            };
            stats.modeled += t;
            stats.modeled_h2d += t;
            let bytes = len * std::mem::size_of::<Complex64>();
            stats.bytes_h2d += bytes;
            if let Some(tele) = device.telemetry.read().as_ref() {
                tele.add(Counter::BytesH2d, bytes as u64);
            }
            Ok(())
        }
        Command::CopyD2h {
            src,
            src_off,
            dst,
            dst_off,
            len,
            per_element,
        } => {
            let mut arena = device.arena.lock();
            let range = arena.resolve(src, src_off, len)?;
            let mut host = dst.lock();
            if dst_off + len > host.len() {
                return Err(DeviceError::RangeOutOfBounds {
                    offset: dst_off,
                    len,
                    buffer_len: host.len(),
                });
            }
            host[dst_off..dst_off + len].copy_from_slice(&arena.storage[range]);
            let t = if per_element {
                spec.per_element_copy_time(len, false)
            } else {
                spec.bulk_copy_time(len, false)
            };
            stats.modeled += t;
            stats.modeled_d2h += t;
            let bytes = len * std::mem::size_of::<Complex64>();
            stats.bytes_d2h += bytes;
            if let Some(tele) = device.telemetry.read().as_ref() {
                tele.add(Counter::BytesD2h, bytes as u64);
            }
            Ok(())
        }
        Command::Scatter {
            src,
            src_off,
            dst,
            map,
            len,
        } => {
            let mut arena = device.arena.lock();
            let src_range = arena.resolve(src, src_off, len)?;
            if let Some(max) = map.max_index(len) {
                // Validate the farthest write.
                arena.resolve(dst, max, 1)?;
            }
            let dst_range = arena.resolve(dst, 0, dst.len())?;
            let dst_start = dst_range.start;
            // src and dst may alias only if disjoint; enforce disjointness.
            let storage = &mut arena.storage;
            if ranges_overlap(&src_range, &dst_range) && src.id == dst.id {
                // In-buffer scatter: copy out first (a real GPU kernel would
                // read-then-write through registers; emulate with a temp).
                let tmp: Vec<Complex64> = storage[src_range.clone()].to_vec();
                for (i, v) in tmp.into_iter().enumerate() {
                    storage[dst_start + map.index(i)] = v;
                }
            } else {
                for i in 0..len {
                    let v = storage[src_range.start + i];
                    storage[dst_start + map.index(i)] = v;
                }
            }
            let t = spec.scatter_time(len);
            stats.modeled += t;
            stats.modeled_scatter += t;
            if let Some(tele) = device.telemetry.read().as_ref() {
                tele.add(Counter::ScatterOps, 1);
            }
            Ok(())
        }
        Command::Gather {
            src,
            map,
            dst,
            dst_off,
            len,
        } => {
            let mut arena = device.arena.lock();
            if let Some(max) = map.max_index(len) {
                arena.resolve(src, max, 1)?;
            }
            let src_range = arena.resolve(src, 0, src.len())?;
            let dst_range = arena.resolve(dst, dst_off, len)?;
            let src_start = src_range.start;
            let dst_start = dst_range.start;
            let storage = &mut arena.storage;
            if ranges_overlap(&src_range, &dst_range) && src.id == dst.id {
                let tmp: Vec<Complex64> = (0..len)
                    .map(|i| storage[src_start + map.index(i)])
                    .collect();
                storage[dst_start..dst_start + len].copy_from_slice(&tmp);
            } else {
                for i in 0..len {
                    storage[dst_start + i] = storage[src_start + map.index(i)];
                }
            }
            let t = spec.scatter_time(len);
            stats.modeled += t;
            stats.modeled_scatter += t;
            if let Some(tele) = device.telemetry.read().as_ref() {
                tele.add(Counter::ScatterOps, 1);
            }
            Ok(())
        }
        Command::RunGate { buf, amps, gate } => {
            assert!(amps.is_power_of_two(), "kernel region must be 2^m amps");
            let mut arena = device.arena.lock();
            let range = arena.resolve(buf, 0, amps)?;
            mq_statevec::apply::apply_gate(&mut arena.storage[range], &gate, 1);
            let t = spec.kernel_time(amps);
            stats.modeled += t;
            stats.modeled_kernel += t;
            if let Some(tele) = device.telemetry.read().as_ref() {
                tele.add(Counter::KernelLaunches, 1);
            }
            Ok(())
        }
        Command::RunFusedGates { buf, amps, gates } => {
            assert!(amps.is_power_of_two(), "kernel region must be 2^m amps");
            let mut arena = device.arena.lock();
            let range = arena.resolve(buf, 0, amps)?;
            let applied = mq_statevec::apply::apply_all(&mut arena.storage[range], &gates, 1);
            let t = spec.fused_kernel_time(amps, gates.len());
            stats.modeled += t;
            stats.modeled_kernel += t;
            if let Some(tele) = device.telemetry.read().as_ref() {
                tele.add(Counter::KernelLaunches, 1);
                if applied.passes_saved() > 0 {
                    tele.add(Counter::ApplyPassesSaved, applied.passes_saved() as u64);
                }
            }
            Ok(())
        }
        Command::DecodeChunk {
            payload,
            codec,
            dst,
            dst_off,
            amps,
        } => {
            let mut arena = device.arena.lock();
            let range = arena.resolve(dst, dst_off, amps)?;
            decompress_complex(codec.as_ref(), &payload, &mut arena.storage[range])
                .map_err(|e| DeviceError::Codec(e.to_string()))?;
            let raw_bytes = amps * std::mem::size_of::<Complex64>();
            let copy = spec.bulk_copy_time_bytes(payload.len(), true);
            // Self-describing payloads (the adaptive codec) name their
            // per-chunk backend; the modeled kernel time scales with the
            // family. Static codecs carry no header and keep the
            // calibrated baseline.
            let decode = match codec.payload_meta(&payload) {
                Some(meta) => spec.decode_kernel_time_for(raw_bytes, meta.codec),
                None => spec.decode_kernel_time(raw_bytes),
            };
            stats.modeled += copy + decode;
            stats.modeled_h2d += copy;
            stats.modeled_decode += decode;
            stats.bytes_h2d += payload.len();
            stats.bytes_h2d_compressed += payload.len();
            if let Some(tele) = device.telemetry.read().as_ref() {
                tele.add(Counter::BytesH2d, payload.len() as u64);
                tele.add(Counter::BytesH2dCompressed, payload.len() as u64);
                tele.add(Counter::DeviceDecodeTime, decode.as_nanos() as u64);
            }
            Ok(())
        }
        Command::EncodeChunk {
            src,
            src_off,
            amps,
            scalar,
            codec,
            out,
        } => {
            let mut arena = device.arena.lock();
            let range = arena.resolve(src, src_off, amps)?;
            let region = &mut arena.storage[range];
            if scalar != Complex64::ONE {
                for a in region.iter_mut() {
                    *a *= scalar;
                }
            }
            let payload = compress_complex(codec.as_ref(), region);
            let raw_bytes = amps * std::mem::size_of::<Complex64>();
            // As with DecodeChunk: adaptive payloads charge their picked
            // backend's kernel shape, static codecs the baseline.
            let encode = match codec.payload_meta(&payload) {
                Some(meta) => spec.encode_kernel_time_for(raw_bytes, meta.codec),
                None => spec.encode_kernel_time(raw_bytes),
            };
            let copy = spec.bulk_copy_time_bytes(payload.len(), false);
            stats.modeled += encode + copy;
            stats.modeled_encode += encode;
            stats.modeled_d2h += copy;
            stats.bytes_d2h += payload.len();
            stats.bytes_d2h_compressed += payload.len();
            if let Some(tele) = device.telemetry.read().as_ref() {
                tele.add(Counter::BytesD2h, payload.len() as u64);
                tele.add(Counter::BytesD2hCompressed, payload.len() as u64);
                tele.add(Counter::DeviceEncodeTime, encode.as_nanos() as u64);
            }
            out.fill(payload);
            Ok(())
        }
        Command::RemapChunks { pairs } => {
            let t = spec.scatter_time(pairs.len());
            stats.modeled += t;
            stats.modeled_scatter += t;
            if let Some(tele) = device.telemetry.read().as_ref() {
                tele.add(Counter::ScatterOps, 1);
            }
            Ok(())
        }
        Command::Sync(_) | Command::RecordEvent(_) | Command::WaitEvent(_) | Command::Shutdown => {
            unreachable!()
        }
    }
}

fn ranges_overlap(a: &std::ops::Range<usize>, b: &std::ops::Range<usize>) -> bool {
    a.start < b.end && b.start < a.end
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_num::complex::c64;

    fn tiny_device(amps: usize) -> Device {
        Device::new(DeviceSpec::tiny_test(amps))
    }

    #[test]
    fn h2d_then_d2h_round_trips() {
        let dev = tiny_device(1024);
        let stream = dev.create_stream();
        let buf = dev.alloc(256).unwrap();
        let src = PinnedBuffer::from_slice(
            &(0..256)
                .map(|i| c64(i as f64, -(i as f64)))
                .collect::<Vec<_>>(),
        );
        let dst = PinnedBuffer::new(256);
        stream.h2d(&src, 0, buf, 0, 256);
        stream.d2h(buf, 0, &dst, 0, 256);
        let stats = stream.synchronize().unwrap();
        assert_eq!(dst.to_vec(), src.to_vec());
        assert_eq!(stats.commands, 2);
        assert_eq!(stats.bytes_h2d, 256 * std::mem::size_of::<Complex64>());
        assert_eq!(stats.bytes_d2h, 256 * std::mem::size_of::<Complex64>());
        assert!(stats.modeled > Duration::ZERO);
    }

    #[test]
    fn remap_chunks_charges_a_scatter_pass() {
        let dev = tiny_device(1024);
        let stream = dev.create_stream();
        stream.remap_chunks(vec![(0, 2), (1, 3)]);
        let stats = stream.synchronize().unwrap();
        assert_eq!(stats.commands, 1);
        assert!(stats.modeled_scatter > Duration::ZERO);
        assert_eq!(stats.modeled, stats.modeled_scatter);
        // No arena data moves: nothing is charged to copies or kernels.
        assert_eq!(stats.bytes_h2d, 0);
        assert_eq!(stats.bytes_d2h, 0);
        assert_eq!(stats.modeled_kernel, Duration::ZERO);
    }

    #[test]
    fn remap_chunks_with_no_pairs_is_a_no_op() {
        let dev = tiny_device(1024);
        let stream = dev.create_stream();
        stream.remap_chunks(vec![]);
        let stats = stream.synchronize().unwrap();
        assert_eq!(stats.commands, 0);
        assert_eq!(stats.modeled, Duration::ZERO);
    }

    #[test]
    fn per_element_copies_cost_much_more_model_time() {
        let dev = tiny_device(1 << 12);
        let buf = dev.alloc(1 << 12).unwrap();
        let src = PinnedBuffer::new(1 << 12);

        let s1 = dev.create_stream();
        s1.h2d(&src, 0, buf, 0, 1 << 12);
        let bulk = s1.synchronize().unwrap().modeled;

        let s2 = dev.create_stream();
        s2.h2d_per_element(&src, 0, buf, 0, 1 << 12);
        let per_el = s2.synchronize().unwrap().modeled;

        let ratio = per_el.as_secs_f64() / bulk.as_secs_f64();
        assert!(ratio > 50.0, "ratio {ratio}");
    }

    #[test]
    fn gate_kernel_runs_on_device_memory() {
        let dev = tiny_device(1024);
        let stream = dev.create_stream();
        let buf = dev.alloc(8).unwrap();
        // |000> on the device.
        let mut init = vec![Complex64::ZERO; 8];
        init[0] = Complex64::ONE;
        let src = PinnedBuffer::from_slice(&init);
        stream.h2d(&src, 0, buf, 0, 8);
        stream.run_gate(buf, Gate::H(0));
        stream.run_gate(buf, Gate::Cx(0, 1));
        stream.run_gate(buf, Gate::Cx(1, 2));
        let out = PinnedBuffer::new(8);
        stream.d2h(buf, 0, &out, 0, 8);
        let stats = stream.synchronize().unwrap();
        let v = out.to_vec();
        let r = std::f64::consts::FRAC_1_SQRT_2;
        assert!(v[0].approx_eq(c64(r, 0.0), 1e-12));
        assert!(v[7].approx_eq(c64(r, 0.0), 1e-12));
        assert!(stats.modeled_kernel > Duration::ZERO);
    }

    #[test]
    fn fused_gates_match_per_gate_and_charge_one_launch() {
        let run = |fused: bool| {
            let dev = tiny_device(1024);
            let stream = dev.create_stream();
            let buf = dev.alloc(8).unwrap();
            let mut init = vec![Complex64::ZERO; 8];
            init[0] = Complex64::ONE;
            let src = PinnedBuffer::from_slice(&init);
            stream.h2d(&src, 0, buf, 0, 8);
            let gates = vec![Gate::H(0), Gate::Cx(0, 1), Gate::Cx(1, 2)];
            if fused {
                stream.run_fused_gates_region(buf, 8, gates);
            } else {
                for g in gates {
                    stream.run_gate(buf, g);
                }
            }
            let out = PinnedBuffer::new(8);
            stream.d2h(buf, 0, &out, 0, 8);
            (stream.synchronize().unwrap(), out.to_vec())
        };
        let (per_gate, want) = run(false);
        let (fused, got) = run(true);
        for (a, b) in want.iter().zip(&got) {
            assert!(a.approx_eq(*b, 1e-12));
        }
        // One batched command replaces three, saving two launch overheads
        // on the modeled clock while the amplitude work stays identical.
        assert_eq!(per_gate.commands, fused.commands + 2);
        let saved = (per_gate.modeled_kernel - fused.modeled_kernel).as_secs_f64();
        let want = 2.0 * DeviceSpec::pcie_gen3().kernel_launch_overhead;
        // Whole-nanosecond rounding per command.
        assert!((saved - want).abs() < 1e-8, "saved {saved} want {want}");
    }

    #[test]
    fn empty_fused_gate_list_is_a_no_op() {
        let dev = tiny_device(64);
        let stream = dev.create_stream();
        let buf = dev.alloc(8).unwrap();
        stream.run_fused_gates_region(buf, 8, Vec::new());
        let stats = stream.synchronize().unwrap();
        assert_eq!(stats.commands, 0);
    }

    #[test]
    fn scatter_strided_places_amplitudes() {
        let dev = tiny_device(64);
        let stream = dev.create_stream();
        let staging = dev.alloc(4).unwrap();
        let dst = dev.alloc(16).unwrap();
        let src =
            PinnedBuffer::from_slice(&[c64(1.0, 0.0), c64(2.0, 0.0), c64(3.0, 0.0), c64(4.0, 0.0)]);
        stream.h2d(&src, 0, staging, 0, 4);
        stream.scatter(
            staging,
            0,
            dst,
            ScatterMap::Strided {
                start: 1,
                stride: 4,
            },
            4,
        );
        stream.synchronize().unwrap();
        let v = dev.debug_read(dst).unwrap();
        assert_eq!(v[1], c64(1.0, 0.0));
        assert_eq!(v[5], c64(2.0, 0.0));
        assert_eq!(v[9], c64(3.0, 0.0));
        assert_eq!(v[13], c64(4.0, 0.0));
        assert_eq!(v[0], Complex64::ZERO);
    }

    #[test]
    fn gather_is_scatter_inverse() {
        let dev = tiny_device(64);
        let stream = dev.create_stream();
        let big = dev.alloc(16).unwrap();
        let staging = dev.alloc(4).unwrap();
        let src =
            PinnedBuffer::from_slice(&(0..16).map(|i| c64(i as f64, 0.0)).collect::<Vec<_>>());
        stream.h2d(&src, 0, big, 0, 16);
        stream.gather(
            big,
            ScatterMap::Strided {
                start: 2,
                stride: 3,
            },
            staging,
            0,
            4,
        );
        let out = PinnedBuffer::new(4);
        stream.d2h(staging, 0, &out, 0, 4);
        stream.synchronize().unwrap();
        let v = out.to_vec();
        assert_eq!(v[0], c64(2.0, 0.0));
        assert_eq!(v[1], c64(5.0, 0.0));
        assert_eq!(v[2], c64(8.0, 0.0));
        assert_eq!(v[3], c64(11.0, 0.0));
    }

    #[test]
    fn errors_are_sticky_and_reported() {
        let dev = tiny_device(64);
        let stream = dev.create_stream();
        let buf = dev.alloc(8).unwrap();
        let src = PinnedBuffer::new(8);
        // Out-of-range copy fails...
        stream.h2d(&src, 0, buf, 4, 8);
        // ...and this valid command is skipped.
        stream.h2d(&src, 0, buf, 0, 8);
        match stream.synchronize() {
            Err(DeviceError::RangeOutOfBounds { .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stale_buffer_detected_at_execution() {
        let dev = tiny_device(64);
        let stream = dev.create_stream();
        let buf = dev.alloc(8).unwrap();
        dev.free(buf).unwrap();
        stream.run_gate(buf, Gate::H(0));
        assert_eq!(stream.synchronize(), Err(DeviceError::InvalidBuffer));
    }

    #[test]
    fn events_record_monotonic_clocks() {
        let dev = tiny_device(1024);
        let stream = dev.create_stream();
        let buf = dev.alloc(512).unwrap();
        let src = PinnedBuffer::new(512);
        let e0 = stream.record_event();
        stream.h2d(&src, 0, buf, 0, 512);
        let e1 = stream.record_event();
        stream.run_gate(buf, Gate::H(0));
        let e2 = stream.record_event();
        stream.synchronize().unwrap();
        let (r0, r1, r2) = (e0.wait(), e1.wait(), e2.wait());
        assert!(r0.modeled <= r1.modeled);
        assert!(r1.modeled < r2.modeled);
        assert!(e2.query().is_some());
    }

    #[test]
    fn two_streams_share_the_arena() {
        let dev = tiny_device(1024);
        let s1 = dev.create_stream();
        let s2 = dev.create_stream();
        let b1 = dev.alloc(128).unwrap();
        let b2 = dev.alloc(128).unwrap();
        let src1 = PinnedBuffer::from_slice(&vec![c64(1.0, 0.0); 128]);
        let src2 = PinnedBuffer::from_slice(&vec![c64(2.0, 0.0); 128]);
        s1.h2d(&src1, 0, b1, 0, 128);
        s2.h2d(&src2, 0, b2, 0, 128);
        s1.synchronize().unwrap();
        s2.synchronize().unwrap();
        assert_eq!(dev.debug_read(b1).unwrap()[0], c64(1.0, 0.0));
        assert_eq!(dev.debug_read(b2).unwrap()[0], c64(2.0, 0.0));
    }

    #[test]
    fn synchronize_on_empty_stream() {
        let dev = tiny_device(16);
        let stream = dev.create_stream();
        let stats = stream.synchronize().unwrap();
        assert_eq!(stats.commands, 0);
        assert_eq!(stats.modeled, Duration::ZERO);
    }
}

#[cfg(test)]
mod codec_command_tests {
    use super::*;
    use mq_compress::CodecSpec;
    use mq_num::complex::c64;

    fn ramp(n: usize) -> Vec<Complex64> {
        (0..n).map(|i| c64(i as f64, -(i as f64) * 0.5)).collect()
    }

    #[test]
    fn decode_chunk_round_trips_and_charges_compressed_bytes() {
        let dev = Device::new(DeviceSpec::tiny_test(1024));
        let stream = dev.create_stream();
        let codec: Arc<dyn Codec> = Arc::from(CodecSpec::Fpc.build());
        let amps = ramp(256);
        let payload = compress_complex(codec.as_ref(), &amps);
        let payload_len = payload.len();
        let buf = dev.alloc(256).unwrap();
        stream.decode_chunk(payload, &codec, buf, 0, 256);
        let out = PinnedBuffer::new(256);
        stream.d2h(buf, 0, &out, 0, 256);
        let stats = stream.synchronize().unwrap();
        assert_eq!(out.to_vec(), amps);
        // The H2D link carried only the compressed payload.
        assert_eq!(stats.bytes_h2d, payload_len);
        assert_eq!(stats.bytes_h2d_compressed, payload_len);
        assert!(payload_len < 256 * std::mem::size_of::<Complex64>());
        assert!(stats.modeled_decode > Duration::ZERO);
        assert_eq!(
            stats.modeled_decode,
            dev.spec()
                .decode_kernel_time(256 * std::mem::size_of::<Complex64>())
        );
    }

    #[test]
    fn encode_chunk_mirrors_host_compression_and_applies_scalar() {
        let dev = Device::new(DeviceSpec::tiny_test(1024));
        let stream = dev.create_stream();
        let codec: Arc<dyn Codec> = Arc::from(CodecSpec::ZeroRle.build());
        let amps = ramp(128);
        let buf = dev.alloc(128).unwrap();
        let src = PinnedBuffer::from_slice(&amps);
        stream.h2d(&src, 0, buf, 0, 128);
        let scalar = c64(0.0, 1.0);
        let cell = stream.encode_chunk(buf, 0, 128, scalar, &codec);
        let stats = stream.synchronize().unwrap();
        let payload = cell.take().expect("payload produced");
        // Byte-identical to compressing the host-scaled amplitudes.
        let scaled: Vec<Complex64> = amps.iter().map(|&a| a * scalar).collect();
        assert_eq!(payload, compress_complex(codec.as_ref(), &scaled));
        assert_eq!(stats.bytes_d2h, payload.len());
        assert_eq!(stats.bytes_d2h_compressed, payload.len());
        assert!(stats.modeled_encode > Duration::ZERO);
        // The cell is emptied by take().
        assert!(cell.take().is_none());
    }

    #[test]
    fn adaptive_payloads_charge_their_picked_backend_family() {
        // A sparse chunk under the adaptive codec self-describes as
        // zero-rle, whose fill kernel models faster than the calibrated
        // baseline; the stream must read the family from the payload
        // header rather than bill the registry name.
        let dev = Device::new(DeviceSpec::tiny_test(4096));
        let stream = dev.create_stream();
        let codec: Arc<dyn Codec> = Arc::from(CodecSpec::Auto { eb: None }.build());
        let mut amps = vec![Complex64::ZERO; 256];
        amps[0] = Complex64::ONE;
        let payload = compress_complex(codec.as_ref(), &amps);
        let family = codec
            .payload_meta(&payload)
            .expect("adaptive payloads are self-describing")
            .codec;
        assert_eq!(family, "zero-rle");
        let raw_bytes = 256 * std::mem::size_of::<Complex64>();
        let buf = dev.alloc(256).unwrap();
        stream.decode_chunk(payload, &codec, buf, 0, 256);
        let stats = stream.synchronize().unwrap();
        assert_eq!(
            stats.modeled_decode,
            dev.spec().decode_kernel_time_for(raw_bytes, family)
        );
        assert!(stats.modeled_decode < dev.spec().decode_kernel_time(raw_bytes));

        let cell = stream.encode_chunk(buf, 0, 256, Complex64::ONE, &codec);
        let stats = stream.synchronize().unwrap();
        assert!(cell.take().is_some());
        assert_eq!(
            stats.modeled_encode,
            dev.spec().encode_kernel_time_for(raw_bytes, family)
        );
    }

    #[test]
    fn corrupt_payload_is_a_sticky_codec_error() {
        let dev = Device::new(DeviceSpec::tiny_test(1024));
        let stream = dev.create_stream();
        let codec: Arc<dyn Codec> = Arc::from(CodecSpec::Fpc.build());
        let mut payload = compress_complex(codec.as_ref(), &ramp(64));
        payload.truncate(payload.len() / 2);
        let buf = dev.alloc(64).unwrap();
        stream.decode_chunk(payload, &codec, buf, 0, 64);
        match stream.synchronize() {
            Err(DeviceError::Codec(_)) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}

#[cfg(test)]
mod wait_event_tests {
    use super::*;
    use mq_circuit::Gate;

    #[test]
    fn cross_stream_wait_orders_execution() {
        let dev = Device::new(DeviceSpec::tiny_test(1024));
        let copy = dev.create_stream();
        let compute = dev.create_stream();
        let buf = dev.alloc(256).unwrap();
        let mut init = vec![Complex64::ZERO; 256];
        init[0] = Complex64::ONE;
        let src = PinnedBuffer::from_slice(&init);

        copy.h2d(&src, 0, buf, 0, 256);
        let uploaded = copy.record_event();
        // Compute must observe the uploaded data, not zeros.
        compute.wait_event(&uploaded);
        compute.run_gate(buf, Gate::H(0));
        let computed = compute.record_event();
        // Copy stream pulls the result back only after the kernel.
        copy.wait_event(&computed);
        let out = PinnedBuffer::new(256);
        copy.d2h(buf, 0, &out, 0, 256);
        copy.synchronize().unwrap();
        compute.synchronize().unwrap();
        let v = out.to_vec();
        let r = std::f64::consts::FRAC_1_SQRT_2;
        assert!(v[0].approx_eq(mq_num::complex::c64(r, 0.0), 1e-12));
        assert!(v[1].approx_eq(mq_num::complex::c64(r, 0.0), 1e-12));
    }

    #[test]
    fn wait_advances_modeled_clock_to_event_time() {
        let dev = Device::new(DeviceSpec::tiny_test(1 << 16));
        let a = dev.create_stream();
        let b = dev.create_stream();
        let buf = dev.alloc(1 << 14).unwrap();
        let src = PinnedBuffer::new(1 << 14);
        // Stream a does a big copy; stream b does nothing but wait.
        a.h2d(&src, 0, buf, 0, 1 << 14);
        let e = a.record_event();
        b.wait_event(&e);
        let sa = a.synchronize().unwrap();
        let sb = b.synchronize().unwrap();
        assert!(sb.modeled >= sa.modeled_h2d);
        assert_eq!(sb.modeled_wait, sb.modeled);
    }

    #[test]
    fn overlapping_streams_beat_serial_on_the_model() {
        // Two independent copies on two streams: each stream's modeled end is
        // one copy, so the device-level end (max) is half the serial sum.
        let dev = Device::new(DeviceSpec::tiny_test(1 << 16));
        let a = dev.create_stream();
        let b = dev.create_stream();
        let buf_a = dev.alloc(1 << 14).unwrap();
        let buf_b = dev.alloc(1 << 14).unwrap();
        let src = PinnedBuffer::new(1 << 14);
        a.h2d(&src, 0, buf_a, 0, 1 << 14);
        b.h2d(&src, 0, buf_b, 0, 1 << 14);
        let sa = a.synchronize().unwrap();
        let sb = b.synchronize().unwrap();
        let overlapped = sa.modeled.max(sb.modeled);
        let serial = sa.modeled + sb.modeled;
        assert!(overlapped.as_secs_f64() < serial.as_secs_f64() * 0.6);
    }
}
