//! Device error types.

use std::fmt;

/// Errors surfaced by the simulated device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// Allocation exceeds free device memory.
    OutOfMemory {
        /// Amplitudes requested.
        requested: usize,
        /// Amplitudes currently free.
        available: usize,
    },
    /// A buffer handle does not refer to a live allocation.
    InvalidBuffer,
    /// An access range falls outside its buffer.
    RangeOutOfBounds {
        /// Start offset of the access (amplitudes).
        offset: usize,
        /// Length of the access (amplitudes).
        len: usize,
        /// Buffer capacity (amplitudes).
        buffer_len: usize,
    },
    /// The stream worker has shut down (e.g. it panicked).
    StreamClosed,
    /// A device codec kernel failed to decode a compressed payload
    /// (corruption or codec bug surfaced on-stream).
    Codec(String),
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "device out of memory: requested {requested} amps, {available} free"
            ),
            DeviceError::InvalidBuffer => write!(f, "invalid device buffer handle"),
            DeviceError::RangeOutOfBounds {
                offset,
                len,
                buffer_len,
            } => write!(
                f,
                "device access [{offset}, {offset}+{len}) outside buffer of {buffer_len} amps"
            ),
            DeviceError::StreamClosed => write!(f, "device stream is closed"),
            DeviceError::Codec(m) => write!(f, "device codec kernel failed: {m}"),
        }
    }
}

impl std::error::Error for DeviceError {}
