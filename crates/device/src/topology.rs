//! Multi-device fleet description.
//!
//! A [`DeviceTopology`] is the static picture of the machine: one
//! [`DeviceSpec`] per simulated GPU, optionally heterogeneous. Building the
//! topology instantiates one independent [`Device`] per spec — each with its
//! own memory arena, stream workers, and telemetry hook — so an N-device
//! fleet is N fully isolated modeled cards, exactly as N physical cards
//! would be.

use crate::model::DeviceSpec;
use crate::stream::Device;

/// Static description of an N-device fleet.
///
/// ```
/// use mq_device::{DeviceSpec, DeviceTopology};
///
/// let topo = DeviceTopology::homogeneous(4, DeviceSpec::pcie_gen3());
/// assert_eq!(topo.len(), 4);
/// let fleet = topo.build();
/// assert_eq!(fleet.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceTopology {
    specs: Vec<DeviceSpec>,
}

impl DeviceTopology {
    /// A topology from explicit (possibly heterogeneous) per-device specs.
    /// An empty spec list is normalized to a single default device so a
    /// topology always describes at least one card.
    pub fn new(specs: Vec<DeviceSpec>) -> DeviceTopology {
        let specs = if specs.is_empty() {
            vec![DeviceSpec::pcie_gen3()]
        } else {
            specs
        };
        DeviceTopology { specs }
    }

    /// `n` identical devices. `n == 0` is normalized to 1.
    pub fn homogeneous(n: usize, spec: DeviceSpec) -> DeviceTopology {
        DeviceTopology::new(vec![spec; n.max(1)])
    }

    /// Number of devices in the fleet.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Always false: a topology holds at least one device.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The per-device specs, in device-index order.
    pub fn specs(&self) -> &[DeviceSpec] {
        &self.specs
    }

    /// The spec of device `i`.
    pub fn spec(&self, i: usize) -> &DeviceSpec {
        &self.specs[i]
    }

    /// Instantiate the fleet: one independent [`Device`] per spec, each with
    /// its own arena and stream workers.
    pub fn build(&self) -> Vec<Device> {
        self.specs.iter().cloned().map(Device::new).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_builds_n_independent_devices() {
        let topo = DeviceTopology::homogeneous(3, DeviceSpec::tiny_test(64));
        assert_eq!(topo.len(), 3);
        assert!(!topo.is_empty());
        let fleet = topo.build();
        assert_eq!(fleet.len(), 3);
        // Arenas are independent: exhausting one device leaves the others
        // untouched.
        let big = fleet[0].alloc(64).unwrap();
        assert!(fleet[0].alloc(1).is_err());
        assert!(fleet[1].alloc(64).is_ok());
        fleet[0].free(big).unwrap();
    }

    #[test]
    fn heterogeneous_specs_are_preserved_in_order() {
        let topo = DeviceTopology::new(vec![DeviceSpec::tiny_test(32), DeviceSpec::pcie_gen3()]);
        assert_eq!(topo.len(), 2);
        assert_eq!(topo.spec(0).memory_amps, 32);
        assert_eq!(topo.spec(1).name, "sim-pcie-gen3");
        assert_eq!(topo.specs()[0].name, "sim-tiny");
    }

    #[test]
    fn zero_devices_normalizes_to_one() {
        assert_eq!(
            DeviceTopology::homogeneous(0, DeviceSpec::tiny_test(8)).len(),
            1
        );
        assert_eq!(DeviceTopology::new(Vec::new()).len(), 1);
    }
}
