//! The device-side [`CompressionBackend`]: compressed payloads cross the
//! modeled PCIe link and the codec itself runs as staged device kernels.
//!
//! [`HostCodecBackend`](mq_compress::HostCodecBackend) and
//! [`DeviceCodecBackend`] produce byte-identical payloads for the same
//! [`Codec`] — the backend only decides *where* the codec runs and what the
//! modeled clock is charged. Decoding through this backend issues a
//! `DecodeChunk` stream command (link time over the compressed bytes plus
//! [`DeviceSpec::decode_kernel_time`](crate::DeviceSpec::decode_kernel_time));
//! encoding issues the symmetric `EncodeChunk`.
//!
//! The hot pipeline path in the engine talks to the stream commands
//! directly; this backend is the standalone seam for tests, benches and any
//! caller that wants one-shot device codec round trips.

use crate::memory::PinnedBuffer;
use crate::stream::{Device, Stream};
use crate::DeviceError;
use mq_compress::{Codec, CodecError, CompressionBackend};
use mq_num::Complex64;
use std::sync::Arc;

/// Runs the codec on a simulated device: payloads ship compressed over the
/// link and decode/encode kernels are charged on a dedicated stream.
pub struct DeviceCodecBackend {
    device: Device,
    stream: Stream,
    codec: Arc<dyn Codec>,
}

impl DeviceCodecBackend {
    /// Builds a backend over `device` running `codec` on its own stream.
    pub fn new(device: &Device, codec: Arc<dyn Codec>) -> DeviceCodecBackend {
        DeviceCodecBackend {
            device: device.clone(),
            stream: device.create_stream(),
            codec,
        }
    }
}

impl std::fmt::Debug for DeviceCodecBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceCodecBackend")
            .field("device", &self.device.spec().name)
            .field("codec", &self.codec.name())
            .finish()
    }
}

fn device_err(e: DeviceError) -> CodecError {
    match e {
        DeviceError::Codec(m) => CodecError::Corrupt(m),
        other => CodecError::Io(other.to_string()),
    }
}

impl CompressionBackend for DeviceCodecBackend {
    fn name(&self) -> &str {
        "device"
    }

    fn codec(&self) -> &Arc<dyn Codec> {
        &self.codec
    }

    fn encode(&self, amps: &[Complex64]) -> Result<Vec<u8>, CodecError> {
        let buf = self.device.alloc(amps.len()).map_err(device_err)?;
        let staging = PinnedBuffer::from_slice(amps);
        self.stream.h2d(&staging, 0, buf, 0, amps.len());
        let cell = self
            .stream
            .encode_chunk(buf, 0, amps.len(), Complex64::ONE, &self.codec);
        let sync = self.stream.synchronize();
        let _ = self.device.free(buf);
        sync.map_err(device_err)?;
        cell.take()
            .ok_or_else(|| CodecError::Io("encode command was skipped".to_string()))
    }

    fn decode(&self, payload: &[u8], out: &mut [Complex64]) -> Result<(), CodecError> {
        let buf = self.device.alloc(out.len()).map_err(device_err)?;
        let staging = PinnedBuffer::new(out.len());
        self.stream
            .decode_chunk(payload.to_vec(), &self.codec, buf, 0, out.len());
        self.stream.d2h(buf, 0, &staging, 0, out.len());
        let sync = self.stream.synchronize();
        let _ = self.device.free(buf);
        sync.map_err(device_err)?;
        staging.read(|data| out.copy_from_slice(data));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceSpec;
    use mq_compress::{compress_complex, CodecSpec, HostCodecBackend};
    use mq_num::complex::c64;

    fn backends(spec: CodecSpec) -> (HostCodecBackend, DeviceCodecBackend) {
        let dev = Device::new(DeviceSpec::tiny_test(1 << 16));
        let codec: Arc<dyn Codec> = Arc::from(spec.build());
        (
            HostCodecBackend::new(Arc::clone(&codec)),
            DeviceCodecBackend::new(&dev, codec),
        )
    }

    #[test]
    fn host_and_device_backends_are_payload_compatible() {
        for spec in CodecSpec::sweep_set() {
            let (host, device) = backends(spec);
            let amps: Vec<Complex64> = (0..256).map(|i| c64((i % 7) as f64, -(i as f64))).collect();
            let host_payload = host.encode(&amps).unwrap();
            let device_payload = device.encode(&amps).unwrap();
            assert_eq!(host_payload, device_payload, "{spec}");
            // Cross-decode: device payload through the host codec and back.
            let mut via_host = vec![Complex64::ZERO; 256];
            let mut via_device = vec![Complex64::ZERO; 256];
            host.decode(&device_payload, &mut via_host).unwrap();
            device.decode(&host_payload, &mut via_device).unwrap();
            assert_eq!(via_host, via_device, "{spec}");
        }
    }

    #[test]
    fn device_backend_charges_compressed_link_traffic() {
        let dev = Device::new(DeviceSpec::tiny_test(1 << 16));
        let tele = mq_telemetry::Telemetry::new();
        dev.attach_telemetry(tele.clone());
        let codec: Arc<dyn Codec> = Arc::from(CodecSpec::ZeroRle.build());
        let backend = DeviceCodecBackend::new(&dev, Arc::clone(&codec));
        // A sparse chunk: ZeroRle crushes it.
        let mut amps = vec![Complex64::ZERO; 1024];
        amps[0] = Complex64::ONE;
        let payload = compress_complex(codec.as_ref(), &amps);
        let mut out = vec![Complex64::ZERO; 1024];
        backend.decode(&payload, &mut out).unwrap();
        dev.detach_telemetry();
        assert_eq!(out, amps);
        use mq_telemetry::Counter;
        assert_eq!(
            tele.counter(Counter::BytesH2dCompressed),
            payload.len() as u64
        );
        assert!(tele.counter(Counter::DeviceDecodeTime) > 0);
        // The decode H2D carried payload bytes, the verification D2H raw.
        assert_eq!(tele.counter(Counter::BytesH2d), payload.len() as u64);
    }

    #[test]
    fn backend_errors_are_typed() {
        let (_, device) = backends(CodecSpec::Fpc);
        let mut out = vec![Complex64::ZERO; 16];
        match device.decode(&[1, 2, 3], &mut out) {
            Err(CodecError::Corrupt(_)) | Err(CodecError::LengthMismatch { .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
