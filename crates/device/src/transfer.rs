//! The three CPU↔GPU transfer strategies of the paper (Table 1).
//!
//! The experiment streams a full `n`-qubit state vector's worth of
//! amplitudes host→device and back device→host, in device-buffer-sized
//! pieces, under one of three strategies:
//!
//! * [`TransferStrategy::Sync`] — one bulk copy per piece; the paper's
//!   lower bound.
//! * [`TransferStrategy::AsyncPerElement`] — one asynchronous copy *per
//!   amplitude*; the paper measures this ≈870x slower H2D than sync because
//!   every call pays launch overhead.
//! * [`TransferStrategy::BufferedScatter`] — bulk-copy into a device
//!   staging buffer, then a device kernel scatters amplitudes to their
//!   final (strided) positions; costs extra device memory but lands within
//!   ~1.03x of sync.
//!
//! [`run_compressed_transfer_experiment`] extends the study with the axis
//! the paper left open: ship the *compressed* chunk over the link and run
//! the codec as staged device kernels (`DecodeChunk` / `EncodeChunk`), so
//! link bytes drop by the codec ratio at the cost of modeled codec-kernel
//! time.

use crate::error::DeviceError;
use crate::memory::PinnedBuffer;
use crate::stream::{Device, ScatterMap};
use mq_compress::{compress_complex, decompress_complex, Codec};
use mq_num::Complex64;
use std::mem::size_of;
use std::sync::Arc;
use std::time::Duration;

/// Which Table 1 strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferStrategy {
    /// Single bulk copy per piece.
    Sync,
    /// One async copy per amplitude.
    AsyncPerElement,
    /// Bulk copy to staging + scatter kernel.
    BufferedScatter,
}

impl TransferStrategy {
    /// All strategies, in Table 1 column order.
    pub fn all() -> [TransferStrategy; 3] {
        [
            TransferStrategy::Sync,
            TransferStrategy::AsyncPerElement,
            TransferStrategy::BufferedScatter,
        ]
    }

    /// Column label used by the harness.
    pub fn label(&self) -> &'static str {
        match self {
            TransferStrategy::Sync => "Sync copy",
            TransferStrategy::AsyncPerElement => "Async copy",
            TransferStrategy::BufferedScatter => "Buffer copy",
        }
    }
}

/// Result of one transfer experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferReport {
    /// Strategy measured.
    pub strategy: TransferStrategy,
    /// Total amplitudes moved each way.
    pub amps: usize,
    /// Modeled host-to-device time (the Table 1 "H2D" column).
    pub modeled_h2d: Duration,
    /// Modeled device-to-host time (the Table 1 "D2H" column).
    pub modeled_d2h: Duration,
    /// Modeled scatter/gather kernel time (buffer strategy only).
    pub modeled_scatter: Duration,
    /// Real wall time of the whole sweep.
    pub real_total: Duration,
    /// Extra device memory the strategy needed, in amplitudes (staging).
    pub extra_device_amps: usize,
}

impl TransferReport {
    /// The H2D column including strategy overheads (scatter time counts
    /// toward the transfer for the buffer strategy, matching how the paper
    /// reports "time needed for the buffer strategy").
    pub fn effective_h2d(&self) -> Duration {
        self.modeled_h2d + self.modeled_scatter / 2
    }

    /// The D2H column including strategy overheads.
    pub fn effective_d2h(&self) -> Duration {
        self.modeled_d2h + self.modeled_scatter / 2
    }
}

/// Runs the Table 1 experiment: moves `2^n_qubits` amplitudes H2D and back
/// D2H through `device`, in pieces of `piece_amps`, under `strategy`.
///
/// `piece_amps` models the device-resident working buffer (the paper's
/// "data chunk"); it must fit in device memory (twice over for the buffer
/// strategy, which also needs staging).
pub fn run_transfer_experiment(
    device: &Device,
    n_qubits: u32,
    piece_amps: usize,
    strategy: TransferStrategy,
) -> Result<TransferReport, DeviceError> {
    let total: usize = 1usize << n_qubits;
    assert!(piece_amps > 0 && piece_amps <= total);
    assert_eq!(total % piece_amps, 0, "pieces must tile the state vector");

    let stream = device.create_stream();
    let dest = device.alloc(piece_amps)?;
    let staging = if strategy == TransferStrategy::BufferedScatter {
        Some(device.alloc(piece_amps)?)
    } else {
        None
    };

    // One reusable pinned piece on the host (contents irrelevant to timing;
    // fill with a recognizable ramp so correctness checks are meaningful).
    let host = PinnedBuffer::new(piece_amps);
    host.write(|d| {
        for (i, z) in d.iter_mut().enumerate() {
            *z = mq_num::complex::c64(i as f64, 0.5);
        }
    });
    let back = PinnedBuffer::new(piece_amps);

    let t0 = std::time::Instant::now();
    // While attached, the sweep shows up as one device-issue span on the
    // run's timeline (counters accumulate inside the stream worker).
    let span = device
        .inner
        .telemetry
        .read()
        .as_ref()
        .map(|t| t.span(mq_telemetry::Role::DeviceIssue));
    let pieces = total / piece_amps;
    for _ in 0..pieces {
        match strategy {
            TransferStrategy::Sync => {
                stream.h2d(&host, 0, dest, 0, piece_amps);
                stream.d2h(dest, 0, &back, 0, piece_amps);
            }
            TransferStrategy::AsyncPerElement => {
                stream.h2d_per_element(&host, 0, dest, 0, piece_amps);
                stream.d2h_per_element(dest, 0, &back, 0, piece_amps);
            }
            TransferStrategy::BufferedScatter => {
                let staging = staging.expect("allocated above");
                // H2D into staging, then scatter into place. (Identity
                // placement here; the engines use strided maps — the cost
                // model charges the same either way.)
                stream.h2d(&host, 0, staging, 0, piece_amps);
                stream.scatter(
                    staging,
                    0,
                    dest,
                    ScatterMap::Contiguous { dst_off: 0 },
                    piece_amps,
                );
                // Gather back to staging, then bulk D2H.
                stream.gather(
                    dest,
                    ScatterMap::Contiguous { dst_off: 0 },
                    staging,
                    0,
                    piece_amps,
                );
                stream.d2h(staging, 0, &back, 0, piece_amps);
            }
        }
    }
    let stats = stream.synchronize()?;
    drop(span);
    let real_total = t0.elapsed();

    // Correctness: the data must actually have made the round trip.
    let ok = back.read(|d| {
        d.iter()
            .enumerate()
            .all(|(i, z)| *z == mq_num::complex::c64(i as f64, 0.5))
    });
    assert!(ok, "transfer corrupted data");

    device.free(dest)?;
    if let Some(s) = staging {
        device.free(s)?;
    }

    Ok(TransferReport {
        strategy,
        amps: total,
        modeled_h2d: stats.modeled_h2d,
        modeled_d2h: stats.modeled_d2h,
        modeled_scatter: stats.modeled_scatter,
        real_total,
        extra_device_amps: if strategy == TransferStrategy::BufferedScatter {
            piece_amps
        } else {
            0
        },
    })
}

/// Result of one compressed-transfer experiment: the "compressed transfer"
/// row that extends Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedTransferReport {
    /// Codec that ran on the device.
    pub codec: String,
    /// Total amplitudes moved each way.
    pub amps: usize,
    /// Raw bytes an uncompressed strategy would have moved each way.
    pub raw_bytes: usize,
    /// Compressed payload bytes that actually crossed the link H2D.
    pub payload_bytes_h2d: usize,
    /// Compressed payload bytes that crossed the link D2H.
    pub payload_bytes_d2h: usize,
    /// Modeled link time H2D (over compressed bytes).
    pub modeled_h2d: Duration,
    /// Modeled link time D2H (over compressed bytes).
    pub modeled_d2h: Duration,
    /// Modeled device decode-kernel time.
    pub modeled_decode: Duration,
    /// Modeled device encode-kernel time.
    pub modeled_encode: Duration,
    /// Real wall time of the whole sweep.
    pub real_total: Duration,
}

impl CompressedTransferReport {
    /// Link-byte reduction over the raw strategies, H2D direction.
    pub fn bytes_cut(&self) -> f64 {
        if self.payload_bytes_h2d == 0 {
            return 1.0;
        }
        self.raw_bytes as f64 / self.payload_bytes_h2d as f64
    }

    /// The H2D column including the decode kernel the strategy pays.
    pub fn effective_h2d(&self) -> Duration {
        self.modeled_h2d + self.modeled_decode
    }

    /// The D2H column including the encode kernel.
    pub fn effective_d2h(&self) -> Duration {
        self.modeled_d2h + self.modeled_encode
    }
}

/// Runs the compressed-transfer experiment: moves `2^n_qubits` amplitudes
/// worth of chunks H2D and back D2H through `device` in pieces of
/// `piece_amps`, but every piece crosses the link as a compressed payload
/// and the codec runs as staged device kernels.
///
/// The host piece is a sparse ramp (one amplitude in sixteen non-zero) —
/// the shallow-circuit regime where chunk compression pays, and the data
/// shape the engine's compressed store actually ships. Round-trip
/// correctness is asserted against the host codec: the write-back payload
/// must decode to what the device held, exactly for lossless codecs and
/// within the error bound for lossy ones.
pub fn run_compressed_transfer_experiment(
    device: &Device,
    n_qubits: u32,
    piece_amps: usize,
    codec: &Arc<dyn Codec>,
) -> Result<CompressedTransferReport, DeviceError> {
    let total: usize = 1usize << n_qubits;
    assert!(piece_amps > 0 && piece_amps <= total);
    assert_eq!(total % piece_amps, 0, "pieces must tile the state vector");
    let codec_err = |e: mq_compress::CodecError| DeviceError::Codec(e.to_string());

    let stream = device.create_stream();
    let dest = device.alloc(piece_amps)?;

    let mut piece = vec![Complex64::ZERO; piece_amps];
    for (i, z) in piece.iter_mut().enumerate().step_by(16) {
        *z = mq_num::complex::c64(i as f64, 0.5);
    }
    let payload = compress_complex(codec.as_ref(), &piece);
    // What the codec reproduces: exact for lossless, bin centers for SZ.
    let mut expect = vec![Complex64::ZERO; piece_amps];
    decompress_complex(codec.as_ref(), &payload, &mut expect).map_err(codec_err)?;

    let t0 = std::time::Instant::now();
    let span = device
        .inner
        .telemetry
        .read()
        .as_ref()
        .map(|t| t.span(mq_telemetry::Role::DeviceIssue));
    let pieces = total / piece_amps;
    let mut last_cell = None;
    for _ in 0..pieces {
        stream.decode_chunk(payload.clone(), codec, dest, 0, piece_amps);
        last_cell = Some(stream.encode_chunk(dest, 0, piece_amps, Complex64::ONE, codec));
    }
    let stats = stream.synchronize()?;
    drop(span);
    let real_total = t0.elapsed();

    // Correctness: the write-back payload must decode to the amplitudes the
    // device held after its own decode.
    let back = last_cell
        .and_then(|c| c.take())
        .ok_or_else(|| DeviceError::Codec("no write-back payload produced".to_string()))?;
    let mut got = vec![Complex64::ZERO; piece_amps];
    decompress_complex(codec.as_ref(), &back, &mut got).map_err(codec_err)?;
    let tol = codec.error_bound().unwrap_or(0.0);
    let ok = got
        .iter()
        .zip(&expect)
        .all(|(g, e)| (g.re - e.re).abs() <= tol && (g.im - e.im).abs() <= tol);
    assert!(ok, "compressed transfer corrupted data ({})", codec.name());

    device.free(dest)?;

    Ok(CompressedTransferReport {
        codec: codec.name().to_string(),
        amps: total,
        raw_bytes: total * size_of::<Complex64>(),
        payload_bytes_h2d: stats.bytes_h2d_compressed,
        payload_bytes_d2h: stats.bytes_d2h_compressed,
        modeled_h2d: stats.modeled_h2d,
        modeled_d2h: stats.modeled_d2h,
        modeled_decode: stats.modeled_decode,
        modeled_encode: stats.modeled_encode,
        real_total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DeviceSpec;

    fn device() -> Device {
        Device::new(DeviceSpec::pcie_gen3())
    }

    #[test]
    fn table1_shape_20_qubits() {
        let dev = device();
        let piece = 1usize << 20; // whole vector in one piece, like the paper
        let sync = run_transfer_experiment(&dev, 20, piece, TransferStrategy::Sync).unwrap();
        let asyn =
            run_transfer_experiment(&dev, 20, piece, TransferStrategy::AsyncPerElement).unwrap();
        let buf =
            run_transfer_experiment(&dev, 20, piece, TransferStrategy::BufferedScatter).unwrap();

        // Paper row (20 qubits): sync 0.003/0.008, async 2.7/9.2,
        // buffer 0.003/0.004-ish (≈1.03x sync overall).
        let s = sync.modeled_h2d.as_secs_f64();
        assert!((0.002..0.004).contains(&s), "sync h2d {s}");
        let a = asyn.modeled_h2d.as_secs_f64();
        assert!((2.0..3.5).contains(&a), "async h2d {a}");
        let ratio = a / s;
        assert!((500.0..1500.0).contains(&ratio), "async/sync {ratio}");

        let b_total = buf.effective_h2d().as_secs_f64() + buf.effective_d2h().as_secs_f64();
        let s_total = sync.modeled_h2d.as_secs_f64() + sync.modeled_d2h.as_secs_f64();
        let buf_ratio = b_total / s_total;
        assert!((1.0..1.1).contains(&buf_ratio), "buffer/sync {buf_ratio}");
        assert_eq!(buf.extra_device_amps, piece);
        assert_eq!(sync.extra_device_amps, 0);
    }

    #[test]
    fn chunked_transfer_matches_single_piece_within_overheads() {
        let dev = device();
        let whole = run_transfer_experiment(&dev, 18, 1 << 18, TransferStrategy::Sync).unwrap();
        let pieces = run_transfer_experiment(&dev, 18, 1 << 14, TransferStrategy::Sync).unwrap();
        // 16 pieces pay 16 call overheads instead of 1: slightly slower.
        assert!(pieces.modeled_h2d >= whole.modeled_h2d);
        let slack = pieces.modeled_h2d.as_secs_f64() / whole.modeled_h2d.as_secs_f64();
        assert!(slack < 1.2, "piecewise overhead too large: {slack}");
    }

    #[test]
    fn d2h_is_slower_than_h2d_on_this_card() {
        let dev = device();
        let r = run_transfer_experiment(&dev, 16, 1 << 16, TransferStrategy::Sync).unwrap();
        assert!(r.modeled_d2h > r.modeled_h2d);
    }

    #[test]
    fn strategies_move_identical_byte_counts() {
        let dev = device();
        for strat in TransferStrategy::all() {
            let r = run_transfer_experiment(&dev, 12, 1 << 10, strat).unwrap();
            assert_eq!(r.amps, 1 << 12, "{strat:?}");
        }
    }

    #[test]
    fn telemetry_counts_transfer_traffic() {
        use mq_telemetry::{Counter, Role, Telemetry};
        let dev = device();
        let t = Telemetry::new();
        dev.attach_telemetry(t.clone());
        let amps = 1usize << 12;
        run_transfer_experiment(&dev, 12, 1 << 10, TransferStrategy::Sync).unwrap();
        let raw = (amps * std::mem::size_of::<Complex64>()) as u64;
        assert_eq!(t.counter(Counter::BytesH2d), raw);
        assert_eq!(t.counter(Counter::BytesD2h), raw);
        assert_eq!(t.counter(Counter::ScatterOps), 0);
        run_transfer_experiment(&dev, 12, 1 << 10, TransferStrategy::BufferedScatter).unwrap();
        // One scatter + one gather per piece.
        assert_eq!(t.counter(Counter::ScatterOps), 2 * 4);
        dev.detach_telemetry();
        let run = t.finish();
        assert!(run.balanced());
        assert!(run.busy(Role::DeviceIssue) > Duration::ZERO);
        assert_eq!(run.spans().len(), 2);
    }

    #[test]
    fn oversized_piece_is_oom() {
        let dev = Device::new(DeviceSpec::tiny_test(1 << 10));
        let err = run_transfer_experiment(&dev, 12, 1 << 11, TransferStrategy::Sync);
        assert!(matches!(err, Err(DeviceError::OutOfMemory { .. })));
    }

    #[test]
    fn compressed_transfer_cuts_link_bytes() {
        use mq_compress::CodecSpec;
        let dev = device();
        let raw = run_transfer_experiment(&dev, 16, 1 << 12, TransferStrategy::Sync).unwrap();
        for spec in [CodecSpec::ZeroRle, CodecSpec::Fpc] {
            let codec: Arc<dyn Codec> = Arc::from(spec.build());
            let r = run_compressed_transfer_experiment(&dev, 16, 1 << 12, &codec).unwrap();
            assert_eq!(
                r.raw_bytes,
                (1usize << 16) * std::mem::size_of::<Complex64>()
            );
            assert!(r.bytes_cut() >= 3.0, "{spec}: cut {}", r.bytes_cut());
            // The link itself is faster; the decode kernel is the new cost.
            assert!(r.modeled_h2d < raw.modeled_h2d, "{spec}");
            assert!(r.modeled_decode > Duration::ZERO, "{spec}");
            assert!(r.modeled_encode > Duration::ZERO, "{spec}");
        }
    }

    #[test]
    fn compressed_transfer_round_trips_lossy_codecs() {
        use mq_compress::CodecSpec;
        let dev = device();
        let codec: Arc<dyn Codec> = Arc::from(CodecSpec::Sz { eb: 1e-8 }.build());
        // The in-function assertion is the check; it must not fire.
        let r = run_compressed_transfer_experiment(&dev, 12, 1 << 10, &codec).unwrap();
        assert!(r.payload_bytes_h2d > 0);
        assert_eq!(r.payload_bytes_h2d, r.payload_bytes_d2h);
    }

    #[test]
    fn labels_match_paper_columns() {
        assert_eq!(TransferStrategy::Sync.label(), "Sync copy");
        assert_eq!(TransferStrategy::AsyncPerElement.label(), "Async copy");
        assert_eq!(TransferStrategy::BufferedScatter.label(), "Buffer copy");
    }
}
