//! # mq-device — a software-simulated GPU for the MEMQSIM reproduction
//!
//! The paper's system runs state-vector updates on a CUDA GPU; this host has
//! none, so per the reproduction's substitution rule the device is simulated
//! in software with the same *architecture* and a calibrated *cost model*:
//!
//! * [`model::DeviceSpec`] — bandwidths, per-call overheads, kernel
//!   throughputs; the default calibration reproduces the paper's Table 1.
//! * [`memory`] — a capacity-limited device DRAM arena with a first-fit
//!   allocator and typed OOM errors, plus pinned host staging buffers.
//! * [`stream`] — CUDA-style in-order command streams on worker threads:
//!   async H2D/D2H copies (bulk or per-element), scatter/gather kernels,
//!   gate kernels, events, synchronize. Every command does its real data
//!   movement *and* is charged a deterministic modeled duration, so
//!   experiments report a reproducible simulated clock alongside wall time.
//! * [`topology`] — an N-device fleet description ([`DeviceTopology`]):
//!   one spec per card, built into N fully independent [`Device`]s.
//! * [`transfer`] — the Table 1 transfer strategies (plus the compressed
//!   variant the paper left open) as reusable experiments.
//! * [`codec_backend`] — the device-side
//!   [`CompressionBackend`](mq_compress::CompressionBackend): chunks cross
//!   the link *compressed* and staged decode/encode kernels run on-stream.
//!
//! What this deliberately does not model: SM-level parallelism, caches,
//! warp scheduling. MEMQSIM's claims live at the data-management layer —
//! call overheads, bandwidths, capacity — which is exactly what is modeled.

//!
//! ## Example
//!
//! ```
//! use mq_device::{Device, DeviceSpec, PinnedBuffer};
//! use mq_circuit::Gate;
//! use mq_num::Complex64;
//!
//! let device = Device::new(DeviceSpec::tiny_test(1024));
//! let stream = device.create_stream();
//! let buf = device.alloc(4).unwrap();
//!
//! // Upload |00>, run H(0); CX(0,1) "on the device", read back.
//! let mut init = vec![Complex64::ZERO; 4];
//! init[0] = Complex64::ONE;
//! let host = PinnedBuffer::from_slice(&init);
//! let out = PinnedBuffer::new(4);
//! stream.h2d(&host, 0, buf, 0, 4);
//! stream.run_gate(buf, Gate::H(0));
//! stream.run_gate(buf, Gate::Cx(0, 1));
//! stream.d2h(buf, 0, &out, 0, 4);
//! let stats = stream.synchronize().unwrap();
//! assert!(stats.modeled_kernel.as_nanos() > 0);
//! let bell = out.to_vec();
//! assert!((bell[0].norm_sqr() - 0.5).abs() < 1e-12);
//! assert!((bell[3].norm_sqr() - 0.5).abs() < 1e-12);
//! ```

pub mod codec_backend;
pub mod error;
pub mod memory;
pub mod model;
pub mod stream;
pub mod topology;
pub mod transfer;

pub use codec_backend::DeviceCodecBackend;
pub use error::DeviceError;
pub use memory::{DeviceBuffer, PinnedBuffer};
pub use model::DeviceSpec;
pub use stream::{Device, Event, EventRecord, PayloadCell, ScatterMap, Stream, StreamStats};
pub use topology::DeviceTopology;
pub use transfer::{
    run_compressed_transfer_experiment, run_transfer_experiment, CompressedTransferReport,
    TransferReport, TransferStrategy,
};
