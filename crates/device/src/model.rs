//! The device cost model.
//!
//! Every command a [`Stream`](crate::stream::Stream) executes is charged a
//! deterministic *modeled* duration from this spec, alongside the real work
//! it performs. The default calibration reproduces the paper's Table 1
//! within a few percent (see `transfer::tests::table1_shape`): the paper's
//! numbers are dominated by (a) per-API-call launch overhead and (b) PCIe
//! bandwidth asymmetry, both of which are explicit parameters here.

use mq_num::Complex64;
use std::mem::size_of;
use std::time::Duration;

/// Static description of a simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Human-readable name.
    pub name: String,
    /// Device memory capacity in amplitudes (16 bytes each).
    pub memory_amps: usize,
    /// Host-to-device bandwidth, bytes/second.
    pub h2d_bandwidth: f64,
    /// Device-to-host bandwidth, bytes/second.
    pub d2h_bandwidth: f64,
    /// Per-call overhead of an H2D copy (driver + launch), seconds.
    pub h2d_call_overhead: f64,
    /// Per-call overhead of a D2H copy, seconds.
    pub d2h_call_overhead: f64,
    /// Kernel launch overhead, seconds.
    pub kernel_launch_overhead: f64,
    /// Gate-kernel throughput, amplitudes/second.
    pub kernel_amp_throughput: f64,
    /// Scatter/gather kernel throughput, amplitudes/second.
    pub scatter_amp_throughput: f64,
    /// Kernel stages one codec pass dispatches. GPU codecs decompose into a
    /// short fixed pipeline of dependent launches (the wgpu Chimp compressor
    /// runs `compute_s` → `calculate_indexes` → `final_compress`), each
    /// paying [`kernel_launch_overhead`](Self::kernel_launch_overhead).
    pub codec_stage_launches: usize,
    /// Device decode-kernel throughput over *uncompressed* bytes produced,
    /// bytes/second.
    pub decode_byte_throughput: f64,
    /// Device encode-kernel throughput over *uncompressed* bytes consumed,
    /// bytes/second.
    pub encode_byte_throughput: f64,
    /// Largest uncompressed buffer one codec dispatch may bind; bigger
    /// chunks split into ⌈bytes / batch⌉ dispatches, each paying the full
    /// stage-launch train (mirrors max-buffer-binding batch splitting in
    /// real GPU codecs).
    pub codec_max_batch_bytes: usize,
}

impl DeviceSpec {
    /// The calibration used throughout the experiments: a PCIe-gen3 datacenter
    /// card. Chosen so the three Table 1 strategies land on the paper's
    /// measurements:
    ///
    /// * 20q sync: 0.003 s H2D / 0.008 s D2H (paper: 0.003 / 0.008)
    /// * 25q sync: 0.089 s H2D / 0.244 s D2H (paper: 0.080 / 0.233)
    /// * 20q async-per-element: 2.6 s / 9.2 s (paper: 2.7 / 9.2)
    /// * buffer strategy ≈ 1.03x sync
    pub fn pcie_gen3() -> DeviceSpec {
        DeviceSpec {
            name: "sim-pcie-gen3".to_string(),
            // 16 GiB card.
            memory_amps: (16usize << 30) / size_of::<Complex64>(),
            h2d_bandwidth: 6.0e9,
            d2h_bandwidth: 2.2e9,
            h2d_call_overhead: 2.5e-6,
            d2h_call_overhead: 8.8e-6,
            kernel_launch_overhead: 5.0e-6,
            kernel_amp_throughput: 2.0e10,
            scatter_amp_throughput: 1.4e10,
            codec_stage_launches: 3,
            decode_byte_throughput: 2.4e10,
            encode_byte_throughput: 1.6e10,
            codec_max_batch_bytes: 128 << 20,
        }
    }

    /// A small test device: tiny memory so OOM paths are easy to exercise,
    /// fast model constants so tests don't accumulate huge modeled times.
    pub fn tiny_test(memory_amps: usize) -> DeviceSpec {
        DeviceSpec {
            name: "sim-tiny".to_string(),
            memory_amps,
            ..DeviceSpec::pcie_gen3()
        }
    }

    /// Device memory capacity in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.memory_amps * size_of::<Complex64>()
    }

    /// Modeled duration of a bulk copy of `amps` amplitudes.
    pub fn bulk_copy_time(&self, amps: usize, h2d: bool) -> Duration {
        self.bulk_copy_time_bytes(amps * size_of::<Complex64>(), h2d)
    }

    /// Modeled duration of a bulk copy of `bytes` raw bytes — the charge for
    /// compressed-payload transfers, whose size is not a whole number of
    /// amplitudes.
    pub fn bulk_copy_time_bytes(&self, bytes: usize, h2d: bool) -> Duration {
        let (bw, ovh) = if h2d {
            (self.h2d_bandwidth, self.h2d_call_overhead)
        } else {
            (self.d2h_bandwidth, self.d2h_call_overhead)
        };
        secs_to_duration(ovh + bytes as f64 / bw)
    }

    /// Modeled duration of `amps` individual per-element async copies.
    pub fn per_element_copy_time(&self, amps: usize, h2d: bool) -> Duration {
        let (bw, ovh) = if h2d {
            (self.h2d_bandwidth, self.h2d_call_overhead)
        } else {
            (self.d2h_bandwidth, self.d2h_call_overhead)
        };
        secs_to_duration(amps as f64 * (ovh + size_of::<Complex64>() as f64 / bw))
    }

    /// Modeled duration of a gate kernel over `amps` amplitudes.
    pub fn kernel_time(&self, amps: usize) -> Duration {
        secs_to_duration(self.kernel_launch_overhead + amps as f64 / self.kernel_amp_throughput)
    }

    /// Modeled duration of one *fused* kernel applying `n_gates` gates over
    /// `amps` amplitudes: a single launch overhead is charged (that is the
    /// fusion win), while amplitude work still scales with the gate count.
    pub fn fused_kernel_time(&self, amps: usize, n_gates: usize) -> Duration {
        secs_to_duration(
            self.kernel_launch_overhead
                + (n_gates.max(1) * amps) as f64 / self.kernel_amp_throughput,
        )
    }

    /// Modeled duration of a scatter/gather kernel over `amps` amplitudes.
    pub fn scatter_time(&self, amps: usize) -> Duration {
        secs_to_duration(self.kernel_launch_overhead + amps as f64 / self.scatter_amp_throughput)
    }

    /// Modeled duration of a device decode pass producing `raw_bytes` of
    /// amplitudes: per-batch stage-launch overhead plus per-byte throughput.
    pub fn decode_kernel_time(&self, raw_bytes: usize) -> Duration {
        self.codec_kernel_time(raw_bytes, self.decode_byte_throughput)
    }

    /// Modeled duration of a device encode pass consuming `raw_bytes` of
    /// amplitudes — the write-back mirror of
    /// [`decode_kernel_time`](Self::decode_kernel_time).
    pub fn encode_kernel_time(&self, raw_bytes: usize) -> Duration {
        self.codec_kernel_time(raw_bytes, self.encode_byte_throughput)
    }

    fn codec_kernel_time(&self, raw_bytes: usize, throughput: f64) -> Duration {
        let batches = raw_bytes.max(1).div_ceil(self.codec_max_batch_bytes).max(1);
        let launches = batches * self.codec_stage_launches.max(1);
        secs_to_duration(
            launches as f64 * self.kernel_launch_overhead + raw_bytes as f64 / throughput,
        )
    }

    /// Relative throughput of one codec family's device kernels against
    /// the calibrated `decode_byte_throughput` / `encode_byte_throughput`
    /// baseline (FPC's XOR-predictor shape). Adaptive payloads name their
    /// per-chunk backend; the model scales the per-byte term so a
    /// zero-RLE-heavy workload decodes faster on the device than an
    /// LZSS-heavy one, matching the relative host-side codec costs.
    /// Unknown names (including static codecs' own) keep the 1.0 baseline.
    pub fn codec_time_scale(&self, codec: &str) -> f64 {
        match codec {
            // Run expansion is a trivial fill kernel.
            "zero-rle" => 4.0,
            "null" => 8.0,
            // The calibration baseline.
            "fpc" => 1.0,
            // Dictionary matching serializes; byte-plane gather adds a pass.
            "shuffle-lzss" => 0.5,
            // Quantized residual decoding: cheaper than LZSS, pricier than
            // the XOR predictor.
            "sz" => 0.75,
            _ => 1.0,
        }
    }

    /// [`decode_kernel_time`](Self::decode_kernel_time) with the per-byte
    /// term scaled for the named codec family (launch overhead unchanged —
    /// every family pays the same dispatch train).
    pub fn decode_kernel_time_for(&self, raw_bytes: usize, codec: &str) -> Duration {
        self.codec_kernel_time(
            raw_bytes,
            self.decode_byte_throughput * self.codec_time_scale(codec),
        )
    }

    /// [`encode_kernel_time`](Self::encode_kernel_time) with the per-byte
    /// term scaled for the named codec family.
    pub fn encode_kernel_time_for(&self, raw_bytes: usize, codec: &str) -> Duration {
        self.codec_kernel_time(
            raw_bytes,
            self.encode_byte_throughput * self.codec_time_scale(codec),
        )
    }
}

fn secs_to_duration(s: f64) -> Duration {
    Duration::from_nanos((s * 1e9).round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(d: Duration, want_s: f64, rel: f64) -> bool {
        let got = d.as_secs_f64();
        (got - want_s).abs() <= want_s * rel
    }

    #[test]
    fn sync_copy_matches_paper_table1() {
        let spec = DeviceSpec::pcie_gen3();
        // 20 qubits = 2^20 amplitudes = 16 MiB.
        assert!(close(spec.bulk_copy_time(1 << 20, true), 0.003, 0.15));
        assert!(close(spec.bulk_copy_time(1 << 20, false), 0.008, 0.15));
        // 25 qubits = 512 MiB.
        assert!(close(spec.bulk_copy_time(1 << 25, true), 0.080, 0.15));
        assert!(close(spec.bulk_copy_time(1 << 25, false), 0.233, 0.15));
    }

    #[test]
    fn per_element_matches_paper_table1() {
        let spec = DeviceSpec::pcie_gen3();
        assert!(close(spec.per_element_copy_time(1 << 20, true), 2.7, 0.15));
        assert!(close(spec.per_element_copy_time(1 << 20, false), 9.2, 0.15));
        assert!(close(spec.per_element_copy_time(1 << 25, true), 77.9, 0.15));
        assert!(close(
            spec.per_element_copy_time(1 << 25, false),
            294.4,
            0.15
        ));
    }

    #[test]
    fn async_to_sync_ratio_is_hundreds() {
        let spec = DeviceSpec::pcie_gen3();
        let sync = spec.bulk_copy_time(1 << 25, true).as_secs_f64();
        let async_ = spec.per_element_copy_time(1 << 25, true).as_secs_f64();
        let ratio = async_ / sync;
        assert!(
            (500.0..1500.0).contains(&ratio),
            "ratio {ratio} out of the paper's ~870x regime"
        );
    }

    #[test]
    fn buffer_strategy_overhead_is_small() {
        let spec = DeviceSpec::pcie_gen3();
        let amps = 1usize << 25;
        let sync = spec.bulk_copy_time(amps, true).as_secs_f64();
        let buffered = sync + spec.scatter_time(amps).as_secs_f64();
        let ratio = buffered / sync;
        assert!((1.0..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn kernel_time_scales_linearly() {
        let spec = DeviceSpec::pcie_gen3();
        let t1 = spec.kernel_time(1 << 20).as_secs_f64();
        let t2 = spec.kernel_time(1 << 21).as_secs_f64();
        assert!(t2 > t1 * 1.8 && t2 < t1 * 2.2);
    }

    #[test]
    fn fused_kernel_saves_exactly_the_extra_launches() {
        let spec = DeviceSpec::pcie_gen3();
        let amps = 1usize << 20;
        for n_gates in [1usize, 4, 16] {
            let fused = spec.fused_kernel_time(amps, n_gates).as_secs_f64();
            let separate = n_gates as f64 * spec.kernel_time(amps).as_secs_f64();
            let want_saved = (n_gates - 1) as f64 * spec.kernel_launch_overhead;
            // Durations are rounded to whole nanoseconds.
            assert!((separate - fused - want_saved).abs() < 1e-7);
        }
        // Degenerate empty batch still costs one launch.
        assert_eq!(spec.fused_kernel_time(amps, 0), spec.kernel_time(amps));
    }

    #[test]
    fn memory_accounting() {
        let spec = DeviceSpec::tiny_test(1024);
        assert_eq!(spec.memory_amps, 1024);
        assert_eq!(spec.memory_bytes(), 16384);
        assert!(DeviceSpec::pcie_gen3().memory_bytes() == 16 << 30);
    }

    #[test]
    fn codec_kernel_charges_stage_launch_train() {
        let spec = DeviceSpec::pcie_gen3();
        // A chunk-sized decode: one batch, `codec_stage_launches` launches.
        let raw = 4096usize;
        let want = spec.codec_stage_launches as f64 * spec.kernel_launch_overhead
            + raw as f64 / spec.decode_byte_throughput;
        // Durations are rounded to whole nanoseconds.
        assert!((spec.decode_kernel_time(raw).as_secs_f64() - want).abs() < 2e-9);
        // Encode is symmetric but on its own (slower) throughput.
        assert!(spec.encode_kernel_time(raw) > spec.decode_kernel_time(raw));
    }

    #[test]
    fn codec_kernel_splits_oversized_buffers_into_batches() {
        let spec = DeviceSpec::pcie_gen3();
        let one_batch = spec.codec_max_batch_bytes;
        let t1 = spec.decode_kernel_time(one_batch).as_secs_f64();
        let t3 = spec.decode_kernel_time(3 * one_batch).as_secs_f64();
        // Three batches pay three stage-launch trains, not one.
        let launch_train = spec.codec_stage_launches as f64 * spec.kernel_launch_overhead;
        let extra_launches = t3 - 3.0 * (t1 - launch_train) - launch_train;
        assert!(
            (extra_launches - 2.0 * launch_train).abs() < 1e-7,
            "extra {extra_launches}"
        );
    }

    #[test]
    fn codec_time_scale_orders_families_and_defaults_to_baseline() {
        let spec = DeviceSpec::pcie_gen3();
        // Simpler codecs decode faster per byte; LZSS is the slowest.
        assert!(spec.codec_time_scale("zero-rle") > spec.codec_time_scale("fpc"));
        assert!(spec.codec_time_scale("sz") < spec.codec_time_scale("fpc"));
        assert!(spec.codec_time_scale("shuffle-lzss") < spec.codec_time_scale("sz"));
        // Unknown names keep the calibrated baseline, so static codecs'
        // pinned timings are unchanged.
        assert_eq!(spec.codec_time_scale("auto"), 1.0);
        let raw = 4096usize;
        assert_eq!(
            spec.decode_kernel_time_for(raw, "auto"),
            spec.decode_kernel_time(raw)
        );
        assert_eq!(
            spec.encode_kernel_time_for(raw, "fpc"),
            spec.encode_kernel_time(raw)
        );
        // The scaled path moves only the per-byte term.
        assert!(spec.decode_kernel_time_for(raw, "zero-rle") < spec.decode_kernel_time(raw));
        assert!(spec.decode_kernel_time_for(raw, "shuffle-lzss") > spec.decode_kernel_time(raw));
    }

    #[test]
    fn byte_copy_matches_amp_copy() {
        let spec = DeviceSpec::pcie_gen3();
        assert_eq!(
            spec.bulk_copy_time(1 << 20, true),
            spec.bulk_copy_time_bytes((1 << 20) * size_of::<Complex64>(), true)
        );
        // Compressed payloads cost less link time than their raw chunks.
        assert!(spec.bulk_copy_time_bytes(1 << 20, true) < spec.bulk_copy_time(1 << 20, true));
    }
}
