//! Quickstart: build a circuit, simulate it with MEMQSIM, inspect results.
//!
//! Run with: `cargo run --example quickstart --release`

use memqsim_suite::circuit::Circuit;
use memqsim_suite::{ChunkStore, CodecSpec, MemQSim, MemQSimConfig};

fn main() {
    // 1. Build a circuit with the chainable builder: a 12-qubit GHZ state.
    let n = 12;
    let mut circuit = Circuit::named(n, "quickstart-ghz");
    circuit.h(0);
    for q in 1..n {
        circuit.cx(q - 1, q);
    }
    println!(
        "Circuit: {} qubits, {} gates, depth {}",
        circuit.n_qubits(),
        circuit.len(),
        circuit.depth()
    );

    // 2. Configure MEMQSIM: 2^8-amplitude chunks, SZ-style lossy compression
    //    with a 1e-10 absolute error bound.
    let sim = MemQSim::new(
        MemQSimConfig::builder()
            .chunk_bits(8)
            .codec(CodecSpec::Sz { eb: 1e-10 })
            .build()
            .expect("valid config"),
    );

    // 3. Simulate. The state stays compressed in memory throughout.
    let outcome = sim.simulate(&circuit).expect("simulation failed");

    // 4. Query without decompressing everything.
    let p_zero = outcome.probability(0);
    let p_ones = outcome.probability((1 << n) - 1);
    println!("P(|0...0>) = {p_zero:.6}");
    println!("P(|1...1>) = {p_ones:.6}");

    // 5. Memory accounting — the point of the paper.
    println!(
        "Dense state would need {} bytes; compressed store holds {} bytes ({:.0}x smaller).",
        outcome.store.dense_bytes(),
        outcome.store.state_bytes(),
        outcome.compression_ratio
    );
    println!(
        "Executed {} stages with {} chunk visits.",
        outcome.report.stages, outcome.report.chunk_visits
    );

    // 6. Per-run telemetry: every engine records a span/counter timeline.
    let t = &outcome.report.telemetry;
    println!(
        "Telemetry: {} spans, {} bytes decompressed, {} bytes recompressed.",
        outcome.report.telemetry.spans().len(),
        t.counter(memqsim_suite::telemetry::Counter::BytesDecompressed),
        t.counter(memqsim_suite::telemetry::Counter::BytesCompressed),
    );

    assert!((p_zero - 0.5).abs() < 1e-6);
    assert!((p_ones - 0.5).abs() < 1e-6);
    println!("\nGHZ state verified: the two extreme basis states each carry probability 1/2.");
}
