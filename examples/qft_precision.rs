//! Lossy compression vs numerical precision on the QFT.
//!
//! Runs the same QFT+inverse-QFT identity circuit at several error bounds
//! and shows how the recovered state's fidelity to |00..0> degrades as the
//! bound loosens — the experiment you would run before trusting a bound.
//!
//! Run with: `cargo run --example qft_precision --release`

use memqsim_suite::circuit::library;
use memqsim_suite::{ChunkStore, CodecSpec, MemQSim, MemQSimConfig};

fn main() {
    let n = 12u32;
    // QFT then inverse QFT: mathematically the identity, so the final state
    // should be |0...0> — any deviation is compression (and fp) error.
    let mut circuit = library::qft(n);
    circuit.extend(&library::iqft(n));
    println!(
        "Identity test circuit: qft{n} ; iqft{n} = {} gates\n",
        circuit.len()
    );

    println!(
        "{:<12} {:>14} {:>16}",
        "error bound", "P(|0...0>)", "resident bytes"
    );
    for eb in [1e-4, 1e-6, 1e-8, 1e-10, 1e-12] {
        let sim = MemQSim::new(
            MemQSimConfig::builder()
                .chunk_bits(8)
                .codec(CodecSpec::Sz { eb })
                .build()
                .expect("valid config"),
        );
        let outcome = sim.simulate(&circuit).expect("simulation failed");
        let p0 = outcome.probability(0);
        println!("{eb:<12.0e} {p0:>14.9} {:>16}", outcome.store.state_bytes());
    }

    println!("\nTighter bounds recover the identity more exactly and cost more memory;");
    println!("at 1e-10 the identity holds to ~9 digits while the state stays compressed.");
}
