//! A small QASM front end: simulate an OpenQASM 2.0 file with MEMQSIM and
//! print a measurement histogram — the "drop-in simulator" usage the
//! paper's modularity pitch implies.
//!
//! Run with: `cargo run --example run_qasm --release -- <file.qasm> [shots]`
//! With no argument, a built-in demo program is used.

use memqsim_suite::circuit::qasm;
use memqsim_suite::core::measure;
use memqsim_suite::{ChunkStore, CodecSpec, MemQSim, MemQSimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const DEMO: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
// 5-qubit GHZ with a phase twist
qreg q[5];
creg c[5];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
cx q[2],q[3];
cx q[3],q[4];
rz(pi/4) q[4];
measure q[0] -> c[0];
"#;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (source, label) = match args.first() {
        Some(path) => (
            std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            }),
            path.clone(),
        ),
        None => (DEMO.to_string(), "<built-in demo>".to_string()),
    };
    let shots: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1000);

    let program = match qasm::parse(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{label}: {e}");
            std::process::exit(1);
        }
    };
    let n = program.circuit.n_qubits();
    println!(
        "{label}: {n} qubits, {} gates, {} measure statements",
        program.circuit.len(),
        program.measurements.len()
    );

    let sim = MemQSim::new(
        MemQSimConfig::builder()
            .chunk_bits((n / 2).max(4))
            .codec(CodecSpec::Sz { eb: 1e-10 })
            .build()
            .expect("valid config"),
    );
    let t0 = std::time::Instant::now();
    let outcome = sim.simulate(&program.circuit).expect("simulation failed");
    println!(
        "simulated in {:.2?}; state resident at {} bytes ({:.1}x under dense)",
        t0.elapsed(),
        outcome.store.state_bytes(),
        outcome.compression_ratio
    );

    let mut rng = StdRng::seed_from_u64(1);
    let counts = measure::sample_counts(&outcome.store, shots, &mut rng).expect("sampling failed");
    println!("\ntop outcomes over {shots} shots:");
    for (state, count) in counts.iter().take(8) {
        println!("  |{state:0width$b}>  {count}", width = n as usize);
    }
}
