//! The modularity seam (paper Fig. 1): one circuit, three backends.
//!
//! The same QAOA workload runs unchanged on the dense CPU baseline, the
//! compressed CPU engine and the hybrid CPU+simulated-GPU pipeline — and the
//! MaxCut expectation value agrees everywhere.
//!
//! Run with: `cargo run --example backend_swap --release`

use memqsim_suite::circuit::library;
use memqsim_suite::statevec::expval::expected_cut;
use memqsim_suite::statevec::State;
use memqsim_suite::{
    Backend, CodecSpec, CompressedCpuBackend, DenseCpuBackend, DeviceSpec, HybridBackend,
    MemQSimConfig,
};

fn main() {
    let n = 12u32;
    let edges = library::ring_graph(n);
    let circuit = library::qaoa_maxcut(n, &edges, &[0.55, 0.85], &[0.35, 0.6]);
    println!(
        "Workload: {} ({} gates) on a {n}-vertex ring, |E| = {}\n",
        circuit.name(),
        circuit.len(),
        edges.len()
    );

    let cfg = MemQSimConfig::builder()
        .chunk_bits(7)
        .codec(CodecSpec::Sz { eb: 1e-10 })
        .pipeline_buffers(2)
        .cpu_share(0.25)
        .build()
        .expect("valid config");
    let dense = DenseCpuBackend::default();
    let compressed = CompressedCpuBackend::new(cfg);
    let hybrid = HybridBackend::new(cfg, DeviceSpec::pcie_gen3());
    let backends: Vec<&dyn Backend> = vec![&dense, &compressed, &hybrid];

    let mut cuts = Vec::new();
    for backend in &backends {
        let run = backend.run(&circuit).expect("backend run failed");
        let state = State::from_amplitudes(&run.amplitudes);
        let cut = expected_cut(&state, &edges);
        println!(
            "{:<45} cut = {:.6}   wall = {:>9.2?}   peak state = {} B",
            backend.name(),
            cut,
            run.wall,
            run.peak_state_bytes
        );
        cuts.push(cut);
    }

    let spread = cuts.iter().fold(0.0f64, |m, &c| m.max((c - cuts[0]).abs()));
    println!("\nMax disagreement across backends: {spread:.2e}");
    assert!(spread < 1e-6, "backends disagree!");
    println!("The compression layer is transparent to the algorithm — Fig. 1 in action.");
}
