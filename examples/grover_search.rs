//! Grover search through the compressed simulator, with sampling.
//!
//! Searches a 12-qubit space (4096 entries) for one marked item while the
//! state vector stays compressed in CPU memory, then samples measurement
//! shots directly from the compressed store. (12 qubits keeps the optimal
//! iteration count ~50, so the single-core run stays under a second.)
//!
//! Run with: `cargo run --example grover_search --release`

use memqsim_suite::circuit::library;
use memqsim_suite::core::measure;
use memqsim_suite::{ChunkStore, CodecSpec, MemQSim, MemQSimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 12u32;
    let marked = 0xBEEu64 & ((1 << n) - 1);
    let iterations = library::optimal_grover_iterations(n);
    println!("Grover search: {n} qubits, marked item {marked:#x}, {iterations} iterations");

    let circuit = library::grover(n, marked, iterations);
    println!("Circuit: {} gates", circuit.len());

    let sim = MemQSim::new(
        MemQSimConfig::builder()
            .chunk_bits(8)
            .codec(CodecSpec::Sz { eb: 1e-9 })
            .build()
            .expect("valid config"),
    );
    let t0 = std::time::Instant::now();
    let outcome = sim.simulate(&circuit).expect("simulation failed");
    println!(
        "Simulated in {:.2?}; resident compressed state: {} of {} dense bytes",
        t0.elapsed(),
        outcome.store.state_bytes(),
        outcome.store.dense_bytes()
    );

    let p = outcome.probability(marked as usize);
    println!("P(marked) = {p:.4}");
    assert!(p > 0.5, "Grover amplification failed");

    // Sample 100 measurement shots straight off the compressed store.
    let mut rng = StdRng::seed_from_u64(2024);
    let counts = measure::sample_counts(&outcome.store, 100, &mut rng).expect("sampling failed");
    let (top_state, top_count) = counts[0];
    println!("Top measurement outcome: {top_state:#x} observed {top_count}/100 times");
    assert_eq!(top_state as u64, marked);
    println!("\nSearch succeeded: the marked item dominates the measurement record.");
}
