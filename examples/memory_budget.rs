//! Simulating past the dense-memory limit — the paper's headline ability.
//!
//! Gives the simulator a hard state-memory budget that a dense state vector
//! of the target size cannot satisfy, then runs a 22-qubit GHZ circuit
//! inside it: 64 MiB of dense amplitudes held in well under 1 MiB.
//!
//! Run with: `cargo run --example memory_budget --release`

use memqsim_suite::circuit::library;
use memqsim_suite::core::{build_store, Granularity};
use memqsim_suite::num::stats::format_bytes;
use memqsim_suite::{ChunkStore, CodecSpec, MemQSimConfig};

fn main() {
    let n = 22u32;
    let budget: usize = 1 << 20; // 1 MiB
    let dense_needed = (1usize << n) * 16;
    println!(
        "Target: {n} qubits -> dense needs {} but our budget is {}.",
        format_bytes(dense_needed),
        format_bytes(budget)
    );

    // Chunk size picks the working-set/footprint trade-off: 2^12-amp chunks
    // keep the transient group buffer at 256 KiB, well inside the budget.
    let cfg = MemQSimConfig::builder()
        .chunk_bits(12)
        .codec(CodecSpec::Sz { eb: 1e-10 })
        .build()
        .expect("valid config");
    let circuit = library::ghz(n);
    let store = build_store(n, &cfg).expect("store construction");
    let t0 = std::time::Instant::now();
    let report = memqsim_suite::core::engine::cpu::run(&store, &circuit, &cfg, Granularity::Staged)
        .expect("simulation failed");
    let peak = report.peak_compressed_bytes + report.peak_buffer_bytes;

    println!(
        "Simulated {} gates in {:.2?} across {} stages.",
        circuit.len(),
        t0.elapsed(),
        report.stages
    );
    println!(
        "Peak footprint: {} store + {} working buffers = {} ({:.0}x under dense).",
        format_bytes(report.peak_compressed_bytes),
        format_bytes(report.peak_buffer_bytes),
        format_bytes(peak),
        dense_needed as f64 / peak as f64
    );
    assert!(peak <= budget, "budget exceeded!");

    let p0 = store.probability(0).expect("store readable");
    let p1 = store.probability((1 << n) - 1).expect("store readable");
    println!("P(|0..0>) = {p0:.6}, P(|1..1>) = {p1:.6} — GHZ verified under budget.");
    assert!((p0 - 0.5).abs() < 1e-5 && (p1 - 0.5).abs() < 1e-5);
}
