//! Facade crate for the MEMQSIM workspace.
//!
//! Re-exports the public surface of every member crate so that the examples
//! and integration tests in this repository (and downstream quick starts)
//! can depend on a single name. Library users who want finer-grained
//! dependencies should depend on the member crates directly.
//!
//! ```
//! use memqsim_suite as mq;
//!
//! // Dense reference...
//! let dense = mq::statevec::run_circuit(
//!     &mq::circuit::library::ghz(6),
//!     &mq::statevec::CpuConfig::default(),
//! );
//! // ...and the compressed MEMQSIM engine, through one facade.
//! let sim = mq::core::MemQSim::new(mq::core::MemQSimConfig {
//!     chunk_bits: 3,
//!     ..Default::default()
//! });
//! let outcome = sim.simulate(&mq::circuit::library::ghz(6)).unwrap();
//! let err = mq::num::metrics::max_amp_err(dense.amplitudes(), &outcome.to_dense());
//! assert!(err < 1e-6);
//! ```

pub use memqsim_core as core;
pub use mq_circuit as circuit;
pub use mq_compress as compress;
pub use mq_device as device;
pub use mq_num as num;
pub use mq_statevec as statevec;
pub use mq_telemetry as telemetry;

// The flat quick-start surface: the types nearly every caller touches,
// re-exported at the crate root so `use memqsim_suite::{Backend, ...}`
// works without knowing which member crate owns what.
pub use memqsim_core::{
    Backend, BackendRun, BudgetPolicy, CachePolicy, ChunkExecutor, ChunkStore,
    CompressedCpuBackend, DenseCpuBackend, EngineError, FusionLevel, HybridBackend, LayoutPolicy,
    MemQSim, MemQSimConfig, MemQSimConfigBuilder, RunReport, RunTelemetry, ShardPolicy,
    StageBatchExecutor, StoreCounters, StoreKind, TransferMode, WorkerSplit,
};
pub use mq_compress::{CodecSpec, Precision};
pub use mq_device::{DeviceSpec, DeviceTopology};
